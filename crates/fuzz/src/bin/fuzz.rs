//! `fuzz` — the scenario fuzzer / differential oracle CLI.
//!
//! ```text
//! fuzz [--seed N] [--iterations N] [--time-budget-ms N]
//!      [--replay DIR] [--failure-dir DIR] [--summary PATH]
//! ```
//!
//! Replays the regression corpus first (when `--replay` is given), then
//! fuzzes `--iterations` fresh scenarios from `--seed`, shrinking every
//! disagreement and writing the minimal configs to `--failure-dir`.
//! The summary JSON (stdout, and `--summary` when given) contains no
//! wall-clock values: same seed + same iteration count → byte-identical
//! summaries, which CI verifies by diffing two runs. Exits non-zero on
//! any disagreement (replayed or fresh).
//!
//! `--time-budget-ms` (default: the `POLLUX_FUZZ_BUDGET_MS` environment
//! variable, else unlimited) stops the loop between scenarios once the
//! budget is spent — the summary then reports fewer `scenarios_run` and
//! `"budget_exhausted": true`, but is otherwise unchanged.

use pollux_fuzz::{corpus, DiffRunner, FuzzConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: fuzz [--seed N] [--iterations N] [--time-budget-ms N] \
                     [--replay DIR] [--failure-dir DIR] [--summary PATH]";

struct Args {
    seed: u64,
    iterations: u64,
    time_budget_ms: Option<u64>,
    replay: Option<PathBuf>,
    failure_dir: Option<PathBuf>,
    summary: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 2011,
        iterations: 256,
        time_budget_ms: std::env::var("POLLUX_FUZZ_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok()),
        replay: None,
        failure_dir: None,
        summary: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--iterations" => {
                args.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--time-budget-ms" => {
                args.time_budget_ms = Some(
                    value("--time-budget-ms")?
                        .parse()
                        .map_err(|e| format!("--time-budget-ms: {e}"))?,
                );
            }
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--failure-dir" => args.failure_dir = Some(PathBuf::from(value("--failure-dir")?)),
            "--summary" => args.summary = Some(PathBuf::from(value("--summary")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Replay the regression corpus through a healthy runner first: a
    // corpus scenario that disagrees again is a regression.
    let mut replay_failures = 0u64;
    if let Some(dir) = &args.replay {
        let entries = match corpus::load_corpus(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("corpus {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        };
        let runner = DiffRunner::new();
        for (name, scenario) in &entries {
            match runner.run(scenario).failure() {
                None => eprintln!("replay {name}: ok"),
                Some(failure) => {
                    replay_failures += 1;
                    eprintln!(
                        "replay {name}: REGRESSION on {}: {}",
                        failure.name, failure.detail
                    );
                }
            }
        }
        eprintln!(
            "replayed {} corpus scenario(s), {replay_failures} regression(s)",
            entries.len()
        );
    }

    let report = pollux_fuzz::run_fuzz(&FuzzConfig {
        seed: args.seed,
        iterations: args.iterations,
        time_budget: args.time_budget_ms.map(Duration::from_millis),
    });

    if let Some(dir) = &args.failure_dir {
        for d in &report.disagreements {
            let name = format!("shrunk_{}_{}", d.pair, d.scenario_id);
            match corpus::write_failure(dir, &name, &d.shrunk) {
                Ok(path) => eprintln!("wrote shrunk failure {}", path.display()),
                Err(e) => eprintln!("failed to write shrunk failure {name}: {e}"),
            }
        }
    }

    let summary = report.summary_json();
    print!("{summary}");
    if let Some(path) = &args.summary {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, &summary) {
            eprintln!("failed to write summary {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if replay_failures > 0 || !report.ok() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
