//! A minimal JSON value, parser and writer for the corpus and summary
//! files.
//!
//! The workspace has no serde; every artefact writer in the repo
//! hand-rolls its JSON. The fuzzer additionally needs to *read* JSON
//! back (the regression corpus), so this module adds a small
//! recursive-descent parser over the subset the corpus uses: objects,
//! arrays, strings with the standard escapes, `true`/`false`/`null`,
//! and numbers. Numbers keep their raw source text so `u64` fields
//! (seeds span the full 64-bit range) round-trip without an `f64`
//! detour.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (duplicate keys keep the
    /// first occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with byte offset) on syntax
    /// errors or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`, when it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate once so `as_f64` on a parsed value cannot fail later.
    raw.parse::<f64>()
        .map_err(|_| format!("invalid number '{raw}' at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the corpus is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it round-trips through [`Json::as_f64`] exactly
/// (Rust's `Display` emits the shortest representation that parses back
/// to the same bits).
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats readable and stable (`2` not `2.0` would
        // still parse, but an explicit fraction marks the field as real).
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}, "e": "x\n\"y\""}"#;
        let v = Json::parse(doc).expect("valid document");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3e-2)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seed = u64::MAX - 7;
        let doc = format!("{{\"seed\": {seed}}}");
        let v = Json::parse(&doc).expect("valid");
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("+5").is_err());
    }

    #[test]
    fn escape_and_float_formatting() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        let tricky = 0.1 + 0.2;
        assert_eq!(fmt_f64(tricky).parse::<f64>().unwrap(), tricky);
    }
}
