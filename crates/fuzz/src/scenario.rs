//! A fuzzed scenario: one point of the joint configuration space.
//!
//! [`FuzzScenario`] flattens everything a differential check needs —
//! model parameters (with the adversary ablation toggles), the initial
//! condition, the adversary strategy, the defense, the analysis-mode
//! override, the DES overlay knobs and one sweep [`OutputKind`] choice —
//! into a plain struct with an exact JSON round-trip, so shrunk failures
//! can live in `tests/regressions/` and be replayed forever.

use crate::json::{self, Json};
use pollux::des_overlay::{DesOverlayConfig, QueueBackend};
use pollux::{AdversaryToggles, AnalysisMode, InitialCondition, ModelParams};
use pollux_adversary::baselines::{PassiveAdversary, RecklessAdversary};
use pollux_adversary::{ClusterView, JoinDecision, Strategy, TargetedStrategy};
use pollux_defense::DefenseSpec;
use pollux_prob::tolerance::AGREEMENT_SIGMAS;
use pollux_sweep::{OutputKind, ParamGrid, Scenario, ToggleSpec};
use std::fmt::Write as _;

/// Which adversary drives the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyChoice {
    /// The paper's targeted adversary (`TargetedStrategy`).
    Targeted,
    /// The do-nothing baseline.
    Passive,
    /// The always-churn baseline.
    Reckless,
}

impl StrategyChoice {
    /// Every variant, in generator draw order.
    pub const ALL: [StrategyChoice; 3] = [
        StrategyChoice::Targeted,
        StrategyChoice::Passive,
        StrategyChoice::Reckless,
    ];

    /// Stable identifier used in JSON and coverage keys.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyChoice::Targeted => "targeted",
            StrategyChoice::Passive => "passive",
            StrategyChoice::Reckless => "reckless",
        }
    }

    fn parse(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// Which future-event list the scenario's DES runs use.
///
/// Fuzzed explicitly (never [`QueueBackend::Auto`], which reads the
/// process environment — corpus replay must stay hermetic): every
/// oracle pair that runs a DES therefore exercises the drawn backend,
/// and the backend byte-identity contract is covered across draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackendChoice {
    /// The index-based 4-ary min-heap.
    Heap,
    /// The O(1)-amortized calendar queue.
    Calendar,
}

impl QueueBackendChoice {
    /// Every variant, in generator draw order.
    pub const ALL: [QueueBackendChoice; 2] =
        [QueueBackendChoice::Heap, QueueBackendChoice::Calendar];

    /// Stable identifier used in JSON and coverage keys.
    pub fn label(&self) -> &'static str {
        match self {
            QueueBackendChoice::Heap => "heap",
            QueueBackendChoice::Calendar => "calendar",
        }
    }

    /// The concrete backend selector.
    pub fn backend(&self) -> QueueBackend {
        match self {
            QueueBackendChoice::Heap => QueueBackend::Heap,
            QueueBackendChoice::Calendar => QueueBackend::Calendar,
        }
    }

    fn parse(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// Enum dispatch over the three concrete strategies, so the DES entry
/// points (generic over `S: Strategy + Sync`, sized) can run any fuzzed
/// adversary without boxing.
#[derive(Debug, Clone)]
pub enum AnyStrategy {
    /// See [`TargetedStrategy`].
    Targeted(TargetedStrategy),
    /// See [`PassiveAdversary`].
    Passive(PassiveAdversary),
    /// See [`RecklessAdversary`].
    Reckless(RecklessAdversary),
}

impl Strategy for AnyStrategy {
    fn name(&self) -> &'static str {
        match self {
            AnyStrategy::Targeted(s) => s.name(),
            AnyStrategy::Passive(s) => s.name(),
            AnyStrategy::Reckless(s) => s.name(),
        }
    }

    fn join_decision(&self, view: &ClusterView, joiner_malicious: bool) -> JoinDecision {
        match self {
            AnyStrategy::Targeted(s) => s.join_decision(view, joiner_malicious),
            AnyStrategy::Passive(s) => s.join_decision(view, joiner_malicious),
            AnyStrategy::Reckless(s) => s.join_decision(view, joiner_malicious),
        }
    }

    fn voluntary_core_leave(&self, view: &ClusterView) -> bool {
        match self {
            AnyStrategy::Targeted(s) => s.voluntary_core_leave(view),
            AnyStrategy::Passive(s) => s.voluntary_core_leave(view),
            AnyStrategy::Reckless(s) => s.voluntary_core_leave(view),
        }
    }

    fn biases_maintenance(&self) -> bool {
        match self {
            AnyStrategy::Targeted(s) => s.biases_maintenance(),
            AnyStrategy::Passive(s) => s.biases_maintenance(),
            AnyStrategy::Reckless(s) => s.biases_maintenance(),
        }
    }
}

/// Which sweep [`OutputKind`] the thread-identity oracle pair exercises.
///
/// One unit choice per `OutputKind` variant; [`FuzzScenario::sweep_scenario`]
/// maps a choice to a concrete kind with budgets small enough for the
/// fuzz loop. Keeping the choice (not the kind) in the scenario keeps
/// the JSON flat and the coverage counters one-per-variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKindChoice {
    /// [`OutputKind::Sojourns`].
    Sojourns,
    /// [`OutputKind::SojournsWithAbsorption`].
    SojournsWithAbsorption,
    /// [`OutputKind::SuccessiveSojourns`].
    SuccessiveSojourns,
    /// [`OutputKind::Absorption`].
    Absorption,
    /// [`OutputKind::PollutionRisk`].
    PollutionRisk,
    /// [`OutputKind::StateSpace`].
    StateSpace,
    /// [`OutputKind::StateSpaceScaling`].
    StateSpaceScaling,
    /// [`OutputKind::OverlayProportions`].
    OverlayProportions,
    /// [`OutputKind::McValidation`].
    McValidation,
    /// [`OutputKind::DesValidation`].
    DesValidation,
    /// [`OutputKind::DesSteadyState`].
    DesSteadyState,
    /// [`OutputKind::Duel`].
    Duel,
    /// [`OutputKind::ControlTuning`].
    ControlTuning,
    /// [`OutputKind::MeanFieldValidation`].
    MeanFieldValidation,
    /// [`OutputKind::MeanFieldEquilibrium`].
    MeanFieldEquilibrium,
    /// [`OutputKind::OverlayMcValidation`].
    OverlayMcValidation,
}

impl SweepKindChoice {
    /// Every variant, in generator draw order.
    pub const ALL: [SweepKindChoice; 16] = [
        SweepKindChoice::Sojourns,
        SweepKindChoice::SojournsWithAbsorption,
        SweepKindChoice::SuccessiveSojourns,
        SweepKindChoice::Absorption,
        SweepKindChoice::PollutionRisk,
        SweepKindChoice::StateSpace,
        SweepKindChoice::StateSpaceScaling,
        SweepKindChoice::OverlayProportions,
        SweepKindChoice::McValidation,
        SweepKindChoice::DesValidation,
        SweepKindChoice::DesSteadyState,
        SweepKindChoice::Duel,
        SweepKindChoice::ControlTuning,
        SweepKindChoice::MeanFieldValidation,
        SweepKindChoice::MeanFieldEquilibrium,
        SweepKindChoice::OverlayMcValidation,
    ];

    /// Stable identifier used in JSON and coverage keys.
    pub fn label(&self) -> &'static str {
        match self {
            SweepKindChoice::Sojourns => "sojourns",
            SweepKindChoice::SojournsWithAbsorption => "sojourns_with_absorption",
            SweepKindChoice::SuccessiveSojourns => "successive_sojourns",
            SweepKindChoice::Absorption => "absorption",
            SweepKindChoice::PollutionRisk => "pollution_risk",
            SweepKindChoice::StateSpace => "state_space",
            SweepKindChoice::StateSpaceScaling => "state_space_scaling",
            SweepKindChoice::OverlayProportions => "overlay_proportions",
            SweepKindChoice::McValidation => "mc_validation",
            SweepKindChoice::DesValidation => "des_validation",
            SweepKindChoice::DesSteadyState => "des_steady_state",
            SweepKindChoice::Duel => "duel",
            SweepKindChoice::ControlTuning => "control_tuning",
            SweepKindChoice::MeanFieldValidation => "meanfield_validation",
            SweepKindChoice::MeanFieldEquilibrium => "meanfield_equilibrium",
            SweepKindChoice::OverlayMcValidation => "overlay_mc_validation",
        }
    }

    fn parse(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// One sampled point of the joint configuration space.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzScenario {
    /// Index in the generator's stream (0-based).
    pub id: u64,
    /// Seed handed to the DES / duel / sweep runs.
    pub seed: u64,
    /// Core size `C`.
    pub c: usize,
    /// Spare capacity `Δ`.
    pub delta: usize,
    /// Pollution threshold `k` (`1 ..= C`).
    pub k: usize,
    /// Fraction of malicious nodes `μ` in `[0, 1)`.
    pub mu: f64,
    /// Churn bias `d` in `[0, 1)`.
    pub d: f64,
    /// Adversary caution `ν` in `(0, 1)`.
    pub nu: f64,
    /// Adversary Rule 1 toggle.
    pub rule1: bool,
    /// Adversary Rule 2 toggle.
    pub rule2: bool,
    /// Biased-maintenance toggle.
    pub bias: bool,
    /// Initial condition (`δ` or `β`).
    pub initial: InitialCondition,
    /// Adversary strategy.
    pub strategy: StrategyChoice,
    /// Defense in the loop.
    pub defense: DefenseSpec,
    /// Analysis-mode override for the analytic half.
    pub mode: AnalysisMode,
    /// `2^cluster_bits` clusters per DES run.
    pub cluster_bits: u32,
    /// Per-cluster churn rate of the DES.
    pub lambda: f64,
    /// DES event budget per cluster.
    pub events_per_cluster: u64,
    /// Regeneration mode (renewal–reward steady state) on/off.
    pub regenerate: bool,
    /// Per-cluster warm-up events discarded from steady-state tallies.
    pub warmup_events: u64,
    /// Occupancy sample grid (sorted ascending).
    pub sample_times: Vec<f64>,
    /// Shard count of the N-shard half of the byte-identity pair
    /// (`2 ..= 8`; the reference run always uses one shard).
    pub shards: usize,
    /// Future-event list backend of every DES run in the scenario.
    pub queue: QueueBackendChoice,
    /// Work-stealing plan on the multi-shard half (inert at one shard).
    pub steal: bool,
    /// Block-size skew of the stealing plan (`0 ..= 3`; 0 when off).
    pub steal_skew: u32,
    /// The sweep kind exercised by the thread-identity pair.
    pub kind: SweepKindChoice,
}

impl FuzzScenario {
    /// The model parameters (with toggles applied).
    ///
    /// # Panics
    ///
    /// Panics if the scenario's fields violate the [`ModelParams`]
    /// invariants — the generator and shrinker only produce valid
    /// fields, and corpus files are validated on load.
    pub fn params(&self) -> ModelParams {
        ModelParams::new(self.c, self.delta, self.k)
            .expect("scenario carries valid (C, Δ, k)")
            .with_mu(self.mu)
            .with_d(self.d)
            .with_nu(self.nu)
            .with_toggles(AdversaryToggles {
                rule1: self.rule1,
                rule2: self.rule2,
                bias: self.bias,
            })
    }

    /// Number of states of the cluster chain at these parameters.
    pub fn state_count(&self) -> usize {
        self.params().state_count()
    }

    /// The concrete adversary.
    pub fn strategy(&self) -> AnyStrategy {
        match self.strategy {
            StrategyChoice::Targeted => AnyStrategy::Targeted(
                TargetedStrategy::new(self.k, self.nu).expect("k ≥ 1 and ν ∈ (0, 1)"),
            ),
            StrategyChoice::Passive => AnyStrategy::Passive(PassiveAdversary::new()),
            StrategyChoice::Reckless => AnyStrategy::Reckless(RecklessAdversary::new()),
        }
    }

    /// The DES overlay configuration at the given shard count.
    pub fn des_config(&self, shards: usize) -> DesOverlayConfig {
        let mut cfg = DesOverlayConfig::new(self.cluster_bits, self.lambda, self.total_events())
            .with_warmup_events(self.warmup_events)
            .with_shards(shards)
            .with_queue_backend(self.queue.backend());
        if self.steal {
            cfg = cfg.with_work_stealing(self.steal_skew);
        }
        if self.regenerate {
            cfg = cfg.with_regeneration();
        }
        if !self.sample_times.is_empty() {
            cfg = cfg.with_sample_times(self.sample_times.clone());
        }
        cfg
    }

    /// The global DES event budget (`events_per_cluster · 2^cluster_bits`).
    pub fn total_events(&self) -> u64 {
        self.events_per_cluster << self.cluster_bits
    }

    /// The single-cell sweep scenario of the thread-identity pair: this
    /// scenario's parameter point under the chosen [`OutputKind`], with
    /// budgets sized for the fuzz loop (the pair asserts byte-identity
    /// across thread counts, not statistical agreement, so small DES/MC
    /// budgets lose no power).
    pub fn sweep_scenario(&self) -> Scenario {
        let toggles = AdversaryToggles {
            rule1: self.rule1,
            rule2: self.rule2,
            bias: self.bias,
        };
        // Budget pinning, like the fixed DES cluster_bits below: the
        // dense Jacobian-eigenvalue classification behind
        // `MeanFieldEquilibrium` is O(n³) in the state count, so that
        // kind clamps the spare axis to keep one fuzz draw bounded.
        let delta = if self.kind == SweepKindChoice::MeanFieldEquilibrium {
            self.delta.min(5)
        } else {
            self.delta
        };
        let grid = ParamGrid::paper()
            .core_size(vec![self.c])
            .max_spare(vec![delta])
            .k(vec![self.k])
            .mu(vec![self.mu])
            .d(vec![self.d])
            .nu(vec![self.nu])
            .toggles(vec![ToggleSpec::named("fuzz", toggles)])
            .initial(vec![self.initial.clone()]);
        let kind = match self.kind {
            SweepKindChoice::Sojourns => OutputKind::Sojourns,
            SweepKindChoice::SojournsWithAbsorption => OutputKind::SojournsWithAbsorption,
            SweepKindChoice::SuccessiveSojourns => OutputKind::SuccessiveSojourns { count: 3 },
            SweepKindChoice::Absorption => OutputKind::Absorption,
            SweepKindChoice::PollutionRisk => OutputKind::PollutionRisk,
            SweepKindChoice::StateSpace => OutputKind::StateSpace,
            SweepKindChoice::StateSpaceScaling => OutputKind::StateSpaceScaling,
            SweepKindChoice::OverlayProportions => OutputKind::OverlayProportions {
                n_clusters: vec![8, 32],
                sample_points: vec![1, 10, 100],
            },
            SweepKindChoice::McValidation => OutputKind::McValidation {
                replications: 16,
                sigmas: AGREEMENT_SIGMAS,
            },
            SweepKindChoice::DesValidation => OutputKind::DesValidation {
                cluster_bits: vec![2],
                lambda: self.lambda,
                max_events_per_cluster: 200,
                sigmas: AGREEMENT_SIGMAS,
            },
            SweepKindChoice::DesSteadyState => OutputKind::DesSteadyState {
                cluster_bits: vec![2],
                lambda: self.lambda,
                max_events_per_cluster: 200,
                sample_times: vec![5.0, 20.0],
                sigmas: AGREEMENT_SIGMAS,
            },
            SweepKindChoice::Duel => OutputKind::Duel {
                defenses: vec![self.defense.clone()],
                cluster_bits: 2,
                lambda: self.lambda,
                max_events_per_cluster: 150,
                sigmas: AGREEMENT_SIGMAS,
            },
            SweepKindChoice::ControlTuning => OutputKind::ControlTuning {
                threshold: 0.05,
                max_rate: 0.5,
                // A loose tolerance keeps the probe at a handful of
                // fluid solves; the pair checks byte-identity, not
                // frontier precision.
                rate_tol: 0.05,
            },
            SweepKindChoice::MeanFieldValidation => OutputKind::MeanFieldValidation {
                cluster_bits: 2,
                lambda: self.lambda,
                max_events_per_cluster: 200,
                sigmas: AGREEMENT_SIGMAS,
                tol: 1e-7,
            },
            SweepKindChoice::MeanFieldEquilibrium => OutputKind::MeanFieldEquilibrium {
                amplifications: vec![0.0, 1.0],
            },
            SweepKindChoice::OverlayMcValidation => OutputKind::OverlayMcValidation {
                n_clusters: 8,
                runs: 4,
                sample_points: vec![5, 20],
                tol_safe: 1.0,
                tol_polluted: 1.0,
            },
        };
        Scenario::new(
            format!("fuzz_{}", self.kind.label()),
            "single-cell thread-identity probe",
            grid,
            kind,
        )
    }

    /// Serializes the scenario as pretty-printed JSON with a fixed field
    /// order, byte-deterministic for identical scenarios.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut field = |key: &str, value: String| {
            let _ = writeln!(out, "  \"{key}\": {value},");
        };
        field("format", "2".into());
        field("id", self.id.to_string());
        field("seed", self.seed.to_string());
        field("c", self.c.to_string());
        field("delta", self.delta.to_string());
        field("k", self.k.to_string());
        field("mu", json::fmt_f64(self.mu));
        field("d", json::fmt_f64(self.d));
        field("nu", json::fmt_f64(self.nu));
        field("rule1", self.rule1.to_string());
        field("rule2", self.rule2.to_string());
        field("bias", self.bias.to_string());
        field("initial", format!("\"{}\"", self.initial.label()));
        field("strategy", format!("\"{}\"", self.strategy.label()));
        let (dk, dp) = defense_fields(&self.defense);
        field("defense", format!("\"{dk}\""));
        field(
            "defense_params",
            format!(
                "[{}]",
                dp.iter()
                    .map(|v| json::fmt_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
        field("mode", format!("\"{}\"", mode_label(&self.mode)));
        field("cluster_bits", self.cluster_bits.to_string());
        field("lambda", json::fmt_f64(self.lambda));
        field("events_per_cluster", self.events_per_cluster.to_string());
        field("regenerate", self.regenerate.to_string());
        field("warmup_events", self.warmup_events.to_string());
        field(
            "sample_times",
            format!(
                "[{}]",
                self.sample_times
                    .iter()
                    .map(|t| json::fmt_f64(*t))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
        field("shards", self.shards.to_string());
        field("queue", format!("\"{}\"", self.queue.label()));
        field("steal", self.steal.to_string());
        field("steal_skew", self.steal_skew.to_string());
        // Last field without the trailing comma.
        let _ = write!(out, "  \"kind\": \"{}\"\n}}\n", self.kind.label());
        out
    }

    /// Parses a scenario back from [`FuzzScenario::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/invalid field; also
    /// validates the model invariants by constructing [`ModelParams`].
    pub fn from_json(text: &str) -> Result<FuzzScenario, String> {
        let v = Json::parse(text)?;
        let format = v
            .get("format")
            .and_then(Json::as_u64)
            .ok_or("missing 'format'")?;
        if !(1..=2).contains(&format) {
            return Err(format!("unsupported corpus format {format}"));
        }
        let u64_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("bad '{key}'"))
        };
        let usize_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_usize)
                .ok_or(format!("bad '{key}'"))
        };
        let f64_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("bad '{key}'"))
        };
        let bool_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or(format!("bad '{key}'"))
        };
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("bad '{key}'"))
        };

        let initial = match str_field("initial")? {
            "delta" => InitialCondition::Delta,
            "beta" => InitialCondition::Beta,
            other => return Err(format!("unsupported initial '{other}'")),
        };
        let strategy =
            StrategyChoice::parse(str_field("strategy")?).ok_or("unsupported strategy")?;
        let defense_params: Vec<f64> = v
            .get("defense_params")
            .and_then(Json::as_arr)
            .ok_or("bad 'defense_params'")?
            .iter()
            .map(|j| j.as_f64().ok_or("non-numeric defense param"))
            .collect::<Result<_, _>>()?;
        let defense = parse_defense(str_field("defense")?, &defense_params)?;
        let mode = match str_field("mode")? {
            "auto" => AnalysisMode::Auto,
            "dense" => AnalysisMode::Dense,
            "sparse" => AnalysisMode::Sparse,
            other => return Err(format!("unsupported mode '{other}'")),
        };
        let kind = SweepKindChoice::parse(str_field("kind")?).ok_or("unsupported kind")?;
        // Format 1 predates the queue/stealing dimensions; old corpus
        // entries replay on the then-only configuration.
        let (queue, steal, steal_skew) = if format >= 2 {
            (
                QueueBackendChoice::parse(str_field("queue")?).ok_or("unsupported queue")?,
                bool_field("steal")?,
                u64_field("steal_skew")? as u32,
            )
        } else {
            (QueueBackendChoice::Heap, false, 0)
        };
        let sample_times: Vec<f64> = v
            .get("sample_times")
            .and_then(Json::as_arr)
            .ok_or("bad 'sample_times'")?
            .iter()
            .map(|j| j.as_f64().ok_or("non-numeric sample time"))
            .collect::<Result<_, _>>()?;

        let scenario = FuzzScenario {
            id: u64_field("id")?,
            seed: u64_field("seed")?,
            c: usize_field("c")?,
            delta: usize_field("delta")?,
            k: usize_field("k")?,
            mu: f64_field("mu")?,
            d: f64_field("d")?,
            nu: f64_field("nu")?,
            rule1: bool_field("rule1")?,
            rule2: bool_field("rule2")?,
            bias: bool_field("bias")?,
            initial,
            strategy,
            defense,
            mode,
            cluster_bits: u64_field("cluster_bits")? as u32,
            lambda: f64_field("lambda")?,
            events_per_cluster: u64_field("events_per_cluster")?,
            regenerate: bool_field("regenerate")?,
            warmup_events: u64_field("warmup_events")?,
            sample_times,
            shards: usize_field("shards")?,
            queue,
            steal,
            steal_skew,
            kind,
        };
        // Validate the model invariants eagerly so replay failures point
        // at the corpus file, not a downstream panic.
        ModelParams::new(scenario.c, scenario.delta, scenario.k)
            .map_err(|e| format!("invalid (C, Δ, k): {e}"))?;
        if !(0.0..1.0).contains(&scenario.mu) || !(0.0..1.0).contains(&scenario.d) {
            return Err("μ and d must lie in [0, 1)".into());
        }
        if !(scenario.nu > 0.0 && scenario.nu < 1.0) {
            return Err("ν must lie in (0, 1)".into());
        }
        if scenario.cluster_bits > 24 || scenario.lambda <= 0.0 {
            return Err("invalid DES config".into());
        }
        if scenario.shards == 0 {
            return Err("shards must be ≥ 1".into());
        }
        if scenario.steal_skew > 3 || (!scenario.steal && scenario.steal_skew != 0) {
            return Err("steal_skew must be 0..=3, and 0 when stealing is off".into());
        }
        Ok(scenario)
    }
}

fn mode_label(mode: &AnalysisMode) -> &'static str {
    match mode {
        AnalysisMode::Auto => "auto",
        AnalysisMode::Dense => "dense",
        AnalysisMode::Sparse => "sparse",
    }
}

/// Flattens a [`DefenseSpec`] to a `(kind, params)` pair for the JSON
/// encoding.
fn defense_fields(spec: &DefenseSpec) -> (&'static str, Vec<f64>) {
    match spec {
        DefenseSpec::Null => ("null", vec![]),
        DefenseSpec::InducedChurn { rate } => ("induced_churn", vec![*rate]),
        DefenseSpec::IncarnationRefresh {
            period,
            detection_prob,
        } => ("incarnation_refresh", vec![*period, *detection_prob]),
        DefenseSpec::AdaptiveClusterSize { target_fraction } => {
            ("adaptive_cluster_size", vec![*target_fraction])
        }
        // `DefenseSpec` is non-exhaustive; scenarios only ever carry the
        // four variants above (enforced by the generator and the parser).
        _ => unreachable!("unknown defense variant in a fuzz scenario"),
    }
}

fn parse_defense(kind: &str, params: &[f64]) -> Result<DefenseSpec, String> {
    match (kind, params) {
        ("null", []) => Ok(DefenseSpec::Null),
        ("induced_churn", [rate]) => Ok(DefenseSpec::InducedChurn { rate: *rate }),
        ("incarnation_refresh", [period, detection_prob]) => Ok(DefenseSpec::IncarnationRefresh {
            period: *period,
            detection_prob: *detection_prob,
        }),
        ("adaptive_cluster_size", [target_fraction]) => Ok(DefenseSpec::AdaptiveClusterSize {
            target_fraction: *target_fraction,
        }),
        _ => Err(format!(
            "unsupported defense '{kind}' with {} params",
            params.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> FuzzScenario {
        FuzzScenario {
            id: 3,
            seed: u64::MAX - 11,
            c: 4,
            delta: 5,
            k: 2,
            mu: 0.25,
            d: 0.6,
            nu: 0.3,
            rule1: true,
            rule2: false,
            bias: true,
            initial: InitialCondition::Beta,
            strategy: StrategyChoice::Targeted,
            defense: DefenseSpec::IncarnationRefresh {
                period: 8.0,
                detection_prob: 0.5,
            },
            mode: AnalysisMode::Sparse,
            cluster_bits: 3,
            lambda: 1.0,
            events_per_cluster: 200,
            regenerate: true,
            warmup_events: 100,
            sample_times: vec![1.5, 12.0],
            shards: 6,
            queue: QueueBackendChoice::Calendar,
            steal: true,
            steal_skew: 2,
            kind: SweepKindChoice::Duel,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let s = sample();
        let text = s.to_json();
        let back = FuzzScenario::from_json(&text).expect("round trip");
        assert_eq!(back, s);
        // Serialization is deterministic.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_rejects_invalid_models() {
        let mut s = sample();
        s.delta = 1; // Δ = 1 violates max_spare ≥ 2
        assert!(FuzzScenario::from_json(&s.to_json()).is_err());
        let mut s = sample();
        s.k = 0;
        assert!(FuzzScenario::from_json(&s.to_json()).is_err());
        let mut s = sample();
        s.mu = 1.0;
        assert!(FuzzScenario::from_json(&s.to_json()).is_err());
        let mut s = sample();
        s.steal = false; // skew without stealing is not a generated point
        assert!(FuzzScenario::from_json(&s.to_json()).is_err());
    }

    #[test]
    fn format_one_corpora_replay_on_the_legacy_configuration() {
        // Pre-queue/stealing corpus entries must keep replaying exactly
        // as they did when committed: heap backend, static shard plan.
        let s = sample();
        let text = s
            .to_json()
            .replace("\"format\": 2,", "\"format\": 1,")
            .replace("  \"queue\": \"calendar\",\n", "")
            .replace("  \"steal\": true,\n", "")
            .replace("  \"steal_skew\": 2,\n", "");
        let back = FuzzScenario::from_json(&text).expect("format 1 parses");
        assert_eq!(back.queue, QueueBackendChoice::Heap);
        assert!(!back.steal);
        assert_eq!(back.steal_skew, 0);
    }

    #[test]
    fn every_kind_choice_builds_a_sweep_scenario() {
        let mut s = sample();
        for kind in SweepKindChoice::ALL {
            s.kind = kind;
            let scenario = s.sweep_scenario();
            assert_eq!(scenario.name, format!("fuzz_{}", kind.label()));
            assert_eq!(scenario.grid.cells().expect("single cell").len(), 1);
        }
    }

    #[test]
    fn strategies_dispatch() {
        let mut s = sample();
        for (choice, name) in [
            (StrategyChoice::Targeted, "targeted"),
            (StrategyChoice::Passive, "passive"),
            (StrategyChoice::Reckless, "reckless"),
        ] {
            s.strategy = choice;
            assert!(s.strategy().name().contains(name), "{choice:?}");
        }
    }
}
