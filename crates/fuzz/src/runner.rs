//! The differential runner: one scenario through every applicable
//! oracle pair.
//!
//! Seven pairs cross-examine the independent evaluation paths:
//!
//! 1. **`dense_vs_sparse`** — the forced-dense and forced-sparse
//!    analytic pipelines on the defense-folded chain must agree to
//!    [`pollux_prob::tolerance::ANALYTIC_REL_TOL`] on every
//!    sweep-visible metric (skipped above [`DENSE_STATE_CAP`] states,
//!    where dense LU is not meant to run).
//! 2. **`analytic_vs_des`** — the analytic predictions against the
//!    whole-overlay DES under the scenario's defense: the
//!    renewal–reward steady-state fraction inside its
//!    [`renewal_wilson`] interval (regeneration mode) or the sojourn
//!    CI + Wilson absorption criterion of the `des_validate` scenario
//!    (plain mode). Targeted-adversary scenarios only — the Markov
//!    chain models the paper's adversary, not the baselines.
//! 3. **`meanfield_vs_exact`** — the fluid-limit stationary fractions
//!    ([`pollux_meanfield::FluidModel::open_equilibrium`]) on the
//!    defense-folded chain against the exact renewal fractions
//!    ([`ClusterAnalysis::steady_state_fractions`]); the two coincide
//!    by the renewal identity, so disagreement above
//!    `analytic_close` is a real defect in one of the paths.
//! 4. **`meanfield_vs_des`** — the fluid-limit stationary polluted
//!    fraction inside the regeneration-mode DES's [`renewal_wilson`]
//!    interval widened by the O(1/M) finite-size band. Targeted +
//!    regeneration scenarios with enough completed cycles only.
//! 5. **`shard_identity`** — the same DES run at 1 and at `shards`
//!    worker shards must produce byte-identical reports.
//! 6. **`recorder_inertness`** — the observed entry point
//!    ([`run_des_overlay_duel_observed`]) must return a report
//!    byte-identical to the unobserved one, with or without the
//!    `metrics` cargo feature.
//! 7. **`sweep_threads`** — a single-cell sweep of the scenario's
//!    [`OutputKind`](pollux_sweep::OutputKind) choice must emit
//!    byte-identical TSV/JSON artefacts at 1 and 2 runner threads.
//!
//! Statistical pairs only ever *skip* (never fail) when their
//! preconditions — completed cycles, no censoring — are not met, so a
//! red verdict always means disagreement, not noise.

use crate::generator::DENSE_STATE_CAP;
use crate::scenario::{FuzzScenario, StrategyChoice};
use pollux::des_overlay::{run_des_overlay_duel, run_des_overlay_duel_observed, DesOverlayReport};
use pollux::duel::renewal_wilson;
use pollux::{AnalysisMode, ClusterAnalysis, ClusterChain};
use pollux_defense::Defense;
use pollux_linalg::SolverOptions;
use pollux_markov::{SojournAnalysis, SojournPartition, SparseDtmc};
use pollux_meanfield::FluidModel;
use pollux_prob::tolerance::{analytic_close, AGREEMENT_SIGMAS, CI_HALF_WIDTH_FLOOR};
use pollux_prob::wilson_interval;
use pollux_sweep::SweepRunner;

/// The oracle pair names, in execution order. Summaries and shrink
/// predicates key on these.
pub const PAIR_NAMES: [&str; 7] = [
    "dense_vs_sparse",
    "analytic_vs_des",
    "meanfield_vs_exact",
    "meanfield_vs_des",
    "shard_identity",
    "recorder_inertness",
    "sweep_threads",
];

/// Minimum completed renewal cycles before the steady-state Wilson
/// criterion is considered informative.
const MIN_CYCLES: u64 = 100;

/// Relative size of an injected fault (see [`Fault`]). Referenced by
/// non-test builds too: the injection helpers themselves are always
/// compiled (only the [`Fault`] constructors are test-gated).
pub(crate) const FAULT_EPS: f64 = 1e-3;

/// Verdict of one oracle pair on one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStatus {
    /// The two paths agreed within the pinned tolerance.
    Agree,
    /// The two paths disagreed — a real finding (or an injected fault).
    Disagree,
    /// The pair's preconditions were not met for this scenario.
    Skip,
}

/// One pair's outcome, with a human-readable detail line.
#[derive(Debug, Clone, PartialEq)]
pub struct PairOutcome {
    /// One of [`PAIR_NAMES`].
    pub name: &'static str,
    /// Agreement verdict.
    pub status: PairStatus,
    /// What was compared (or why the pair was skipped).
    pub detail: String,
}

impl PairOutcome {
    fn agree(name: &'static str, detail: impl Into<String>) -> Self {
        PairOutcome {
            name,
            status: PairStatus::Agree,
            detail: detail.into(),
        }
    }

    fn disagree(name: &'static str, detail: impl Into<String>) -> Self {
        PairOutcome {
            name,
            status: PairStatus::Disagree,
            detail: detail.into(),
        }
    }

    fn skip(name: &'static str, detail: impl Into<String>) -> Self {
        PairOutcome {
            name,
            status: PairStatus::Skip,
            detail: detail.into(),
        }
    }
}

/// All pair outcomes of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// One outcome per entry of [`PAIR_NAMES`], in order.
    pub pairs: Vec<PairOutcome>,
}

impl Verdict {
    /// The first disagreeing pair, if any.
    pub fn failure(&self) -> Option<&PairOutcome> {
        self.pairs.iter().find(|p| p.status == PairStatus::Disagree)
    }
}

/// Fault-injection hook for the oracle self-check: a deliberately
/// broken runner must be *caught* by the pairs, proving the oracle has
/// teeth. Constructed only by `#[cfg(test)]` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))] // constructed only by test code
pub(crate) enum Fault {
    /// Moves `FAULT_EPS` of probability mass between two entries of one
    /// transient CSR row before the *sparse* sojourn solve (mass-
    /// preserving, so the perturbed chain still validates as
    /// stochastic). The dense pipeline sees the unperturbed chain, so
    /// `dense_vs_sparse` must flag the 1e-3 drift against its 1e-9
    /// tolerance.
    SparseCsrEntry,
    /// Scales the DES churn rate λ by `1 + FAULT_EPS` in the N-shard
    /// run only; `shard_identity` must flag the byte difference.
    DesLambdaRate,
}

/// The differential runner. Stateless apart from the test-only fault
/// hook, so one instance can run any number of scenarios.
#[derive(Debug, Default)]
pub struct DiffRunner {
    fault: Option<Fault>,
}

impl DiffRunner {
    /// A healthy runner (no fault injected).
    pub fn new() -> Self {
        DiffRunner { fault: None }
    }

    /// A deliberately broken runner for the oracle self-check.
    #[cfg(test)]
    pub(crate) fn with_fault(fault: Fault) -> Self {
        DiffRunner { fault: Some(fault) }
    }

    /// Runs every oracle pair on `scenario`.
    pub fn run(&self, scenario: &FuzzScenario) -> Verdict {
        let base = self.base_report(scenario);
        let pairs = vec![
            self.pair_dense_vs_sparse(scenario),
            self.pair_analytic_vs_des(scenario, base.as_ref()),
            self.pair_meanfield_vs_exact(scenario),
            self.pair_meanfield_vs_des(scenario, base.as_ref()),
            self.pair_shard_identity(scenario, base.as_ref()),
            self.pair_recorder_inertness(scenario, base.as_ref()),
            self.pair_sweep_threads(scenario),
        ];
        Verdict { pairs }
    }

    /// Runs a single pair by name — the shrinker's predicate, which
    /// only needs to re-check the failing pair.
    ///
    /// # Panics
    ///
    /// Panics on a name outside [`PAIR_NAMES`].
    pub fn run_pair(&self, scenario: &FuzzScenario, name: &str) -> PairOutcome {
        match name {
            "dense_vs_sparse" => self.pair_dense_vs_sparse(scenario),
            "analytic_vs_des" => {
                let base = self.base_report(scenario);
                self.pair_analytic_vs_des(scenario, base.as_ref())
            }
            "meanfield_vs_exact" => self.pair_meanfield_vs_exact(scenario),
            "meanfield_vs_des" => {
                let base = self.base_report(scenario);
                self.pair_meanfield_vs_des(scenario, base.as_ref())
            }
            "shard_identity" => {
                let base = self.base_report(scenario);
                self.pair_shard_identity(scenario, base.as_ref())
            }
            "recorder_inertness" => {
                let base = self.base_report(scenario);
                self.pair_recorder_inertness(scenario, base.as_ref())
            }
            "sweep_threads" => self.pair_sweep_threads(scenario),
            other => panic!("unknown oracle pair '{other}'"),
        }
    }

    /// The reference DES run: one shard, scenario defense in the loop.
    /// `None` when the defense spec fails to build (each pair then
    /// skips with the reason).
    fn base_report(&self, s: &FuzzScenario) -> Option<DesOverlayReport> {
        let defense = s.defense.build().ok()?;
        let report = run_des_overlay_duel(
            &s.params(),
            &s.initial,
            &s.strategy(),
            defense.as_ref(),
            &s.des_config(1),
            s.seed,
        );
        Some(report)
    }

    fn pair_dense_vs_sparse(&self, s: &FuzzScenario) -> PairOutcome {
        const NAME: &str = "dense_vs_sparse";
        let states = s.state_count();
        if states > DENSE_STATE_CAP {
            return PairOutcome::skip(
                NAME,
                format!("{states} states above the dense cap ({DENSE_STATE_CAP})"),
            );
        }
        let defense = match s.defense.build() {
            Ok(d) => d,
            Err(e) => return PairOutcome::skip(NAME, format!("defense spec: {e}")),
        };
        let params = s.params();
        let analyze = |mode: AnalysisMode| {
            let chain = ClusterChain::build_with_defense(&params, defense.as_ref());
            ClusterAnalysis::from_chain_with_mode(chain, s.initial.clone(), mode)
        };
        let dense = match analyze(AnalysisMode::Dense) {
            Ok(a) => a,
            Err(e) => return PairOutcome::skip(NAME, format!("dense pipeline: {e}")),
        };
        let sparse = match analyze(AnalysisMode::Sparse) {
            Ok(a) => a,
            Err(e) => return PairOutcome::skip(NAME, format!("sparse pipeline: {e}")),
        };

        let metrics = |a: &ClusterAnalysis| -> Result<Vec<(&'static str, f64)>, String> {
            let split = a.absorption_split().map_err(|e| e.to_string())?;
            let (steady_s, steady_p) = a.steady_state_fractions().map_err(|e| e.to_string())?;
            Ok(vec![
                (
                    "E_T_S",
                    a.expected_safe_events().map_err(|e| e.to_string())?,
                ),
                (
                    "E_T_P",
                    a.expected_polluted_events().map_err(|e| e.to_string())?,
                ),
                (
                    "E_T",
                    a.expected_absorption_events().map_err(|e| e.to_string())?,
                ),
                (
                    "var_S",
                    a.variance_safe_events().map_err(|e| e.to_string())?,
                ),
                (
                    "var_P",
                    a.variance_polluted_events().map_err(|e| e.to_string())?,
                ),
                (
                    "p_ever",
                    a.pollution_probability().map_err(|e| e.to_string())?,
                ),
                ("AmS", split.safe_merge),
                ("AlS", split.safe_split),
                ("AmP", split.polluted_merge),
                ("AlP", split.polluted_split),
                ("steady_S", steady_s),
                ("steady_P", steady_p),
            ])
        };
        let dense_metrics = match metrics(&dense) {
            Ok(m) => m,
            Err(e) => return PairOutcome::skip(NAME, format!("dense metrics: {e}")),
        };
        let mut sparse_metrics = match metrics(&sparse) {
            Ok(m) => m,
            Err(e) => return PairOutcome::skip(NAME, format!("sparse metrics: {e}")),
        };

        if self.fault_is(Fault::SparseCsrEntry) {
            match self.perturbed_sparse_sojourns(s, defense.as_ref()) {
                Ok((e_ts, e_tp)) => {
                    for (name, value) in sparse_metrics.iter_mut() {
                        match *name {
                            "E_T_S" => *value = e_ts,
                            "E_T_P" => *value = e_tp,
                            _ => {}
                        }
                    }
                }
                Err(e) => return PairOutcome::skip(NAME, format!("fault injection: {e}")),
            }
        }

        for ((name, a), (_, b)) in dense_metrics.iter().zip(sparse_metrics.iter()) {
            if !analytic_close(*a, *b) {
                return PairOutcome::disagree(
                    NAME,
                    format!("{name}: dense = {a:?} vs sparse = {b:?}"),
                );
            }
        }
        PairOutcome::agree(
            NAME,
            format!("{} metrics agree at {states} states", dense_metrics.len()),
        )
    }

    /// The sparse sojourns of a mass-preservingly perturbed chain: the
    /// [`Fault::SparseCsrEntry`] payload.
    fn perturbed_sparse_sojourns(
        &self,
        s: &FuzzScenario,
        defense: &(dyn Defense + Send + Sync),
    ) -> Result<(f64, f64), String> {
        let params = s.params();
        let chain = ClusterChain::build_with_defense(&params, defense);
        let source = chain.sparse_dtmc();
        let n = source.n_states();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            for (j, v) in source.successors(i) {
                triplets.push((i, j, v));
            }
        }
        let partition = SojournPartition::new(
            chain.space().transient_safe().to_vec(),
            chain.space().transient_polluted().to_vec(),
        )
        .map_err(|e| e.to_string())?;
        let alpha = s
            .initial
            .distribution(chain.space())
            .map_err(|e| e.to_string())?;
        let solve = |trips: Vec<(usize, usize, f64)>| -> Result<(f64, f64), String> {
            let dtmc = SparseDtmc::from_triplets(n, trips).map_err(|e| e.to_string())?;
            let sojourns = SojournAnalysis::new_sparse(
                &dtmc,
                &partition,
                &alpha,
                SolverOptions::force_sparse(),
            )
            .map_err(|e| e.to_string())?;
            Ok((
                sojourns.expected_total_s().map_err(|e| e.to_string())?,
                sojourns.expected_total_p().map_err(|e| e.to_string())?,
            ))
        };
        let base = solve(triplets.clone())?;

        // Move `FAULT_EPS` of mass between two entries of one transient
        // row — the row sum, and therefore stochasticity validation, is
        // preserved. Not every (row, entry-pair) is visible to the
        // aggregate sojourn metrics: the row can be unreachable from the
        // initial distribution, or both target states can carry the same
        // continuation value (e.g. both leave the safe set immediately).
        // Search the combinations in deterministic order and keep the
        // first whose perturbed sojourns move by a margin well above the
        // oracle tolerance, so injection provably produces a detectable
        // fault rather than a silent no-op.
        let transient: Vec<usize> = chain
            .space()
            .transient_safe()
            .iter()
            .chain(chain.space().transient_polluted().iter())
            .copied()
            .collect();
        for &row in &transient {
            let idx: Vec<usize> = triplets
                .iter()
                .enumerate()
                .filter(|(_, (i, _, _))| *i == row)
                .map(|(pos, _)| pos)
                .collect();
            for pair in idx.windows(2) {
                let (from, to) = (pair[0], pair[1]);
                let eps = FAULT_EPS.min(triplets[from].2 / 2.0);
                if eps <= 0.0 {
                    continue;
                }
                let mut perturbed = triplets.clone();
                perturbed[from].2 -= eps;
                perturbed[to].2 += eps;
                let (e_ts, e_tp) = solve(perturbed)?;
                let margin = |a: f64, b: f64| (a - b).abs() > 1e-6 * a.abs().max(b.abs()).max(1.0);
                if margin(e_ts, base.0) || margin(e_tp, base.1) {
                    return Ok((e_ts, e_tp));
                }
            }
        }
        Err("no CSR perturbation moves the sojourn metrics".into())
    }

    fn pair_analytic_vs_des(
        &self,
        s: &FuzzScenario,
        base: Option<&DesOverlayReport>,
    ) -> PairOutcome {
        const NAME: &str = "analytic_vs_des";
        if s.strategy != StrategyChoice::Targeted {
            return PairOutcome::skip(NAME, "the Markov chain models the targeted adversary only");
        }
        let Some(report) = base else {
            return PairOutcome::skip(NAME, "defense spec failed to build");
        };
        let defense = match s.defense.build() {
            Ok(d) => d,
            Err(e) => return PairOutcome::skip(NAME, format!("defense spec: {e}")),
        };
        // Respect the scenario's analysis-mode override, but never force
        // dense above the cap.
        let mode = if s.mode == AnalysisMode::Dense && s.state_count() > DENSE_STATE_CAP {
            AnalysisMode::Auto
        } else {
            s.mode
        };
        let chain = ClusterChain::build_with_defense(&s.params(), defense.as_ref());
        let analysis = match ClusterAnalysis::from_chain_with_mode(chain, s.initial.clone(), mode) {
            Ok(a) => a,
            Err(e) => return PairOutcome::skip(NAME, format!("analytic pipeline: {e}")),
        };

        if s.regenerate {
            // Renewal–reward steady state against the renewal-adjusted
            // Wilson interval, as in the `des_steady_state` scenario.
            let (_, want_polluted) = match analysis.steady_state_fractions() {
                Ok(f) => f,
                Err(e) => return PairOutcome::skip(NAME, format!("steady state: {e}")),
            };
            if report.measured_cycles < MIN_CYCLES {
                return PairOutcome::skip(
                    NAME,
                    format!(
                        "{} completed cycles below the informative minimum {MIN_CYCLES}",
                        report.measured_cycles
                    ),
                );
            }
            let (lo, hi) = renewal_wilson(
                report.polluted_event_total,
                report.events - report.warmup_events,
                report.measured_cycles,
                AGREEMENT_SIGMAS,
            );
            let (_, des_polluted) = report.steady_state_fractions();
            // Wilson bounds carry O(1e-18) rounding residue (a zero
            // count yields a lower bound of ~1e-18, excluding an exact
            // analytic 0.0), so containment gets an absolute epsilon —
            // fractions live in [0, 1].
            const WILSON_EPS: f64 = 1e-12;
            if want_polluted >= lo - WILSON_EPS && want_polluted <= hi + WILSON_EPS {
                PairOutcome::agree(
                    NAME,
                    format!(
                        "steady polluted {want_polluted:.6} in [{lo:.6}, {hi:.6}] over {} cycles",
                        report.measured_cycles
                    ),
                )
            } else {
                PairOutcome::disagree(
                    NAME,
                    format!(
                        "steady polluted: analytic {want_polluted:?} outside \
                         [{lo:?}, {hi:?}] (DES {des_polluted:?}, {} cycles)",
                        report.measured_cycles
                    ),
                )
            }
        } else {
            // Sojourn CI + Wilson absorption criterion, as in the
            // `des_validate` scenario.
            if report.censored > 0 {
                return PairOutcome::skip(
                    NAME,
                    format!("{} censored clusters at this budget", report.censored),
                );
            }
            if report.absorbed == 0 {
                return PairOutcome::skip(NAME, "no absorbed clusters");
            }
            let e_ts = match analysis.expected_safe_events() {
                Ok(v) => v,
                Err(e) => return PairOutcome::skip(NAME, format!("E(T_S): {e}")),
            };
            let e_tp = match analysis.expected_polluted_events() {
                Ok(v) => v,
                Err(e) => return PairOutcome::skip(NAME, format!("E(T_P): {e}")),
            };
            let split = match analysis.absorption_split() {
                Ok(v) => v,
                Err(e) => return PairOutcome::skip(NAME, format!("absorption split: {e}")),
            };
            let checks = [
                ("T_S", e_ts, report.safe_events),
                ("T_P", e_tp, report.polluted_events),
            ];
            for (name, want, got) in checks {
                if got.ci_half_width == 0.0 {
                    // A constant sample (e.g. every cluster saw zero
                    // polluted events) carries no variance information:
                    // the CI collapses to a point and any rare-but-real
                    // event class would read as a false alarm. The
                    // Wilson absorption check below stays informative.
                    continue;
                }
                let slack = AGREEMENT_SIGMAS * got.ci_half_width.max(CI_HALF_WIDTH_FLOOR);
                if (got.mean - want).abs() > slack {
                    return PairOutcome::disagree(
                        NAME,
                        format!(
                            "{name}: analytic {want:?} vs DES {:?} ± {slack:?}",
                            got.mean
                        ),
                    );
                }
            }
            let (pm_lo, pm_hi) = wilson_interval(
                report.absorption_counts[2],
                report.absorbed,
                AGREEMENT_SIGMAS,
            );
            // Same rounding residue as the renewal bound: a zero count
            // yields a lower bound of ~1e-18, excluding an exact 0.0.
            const WILSON_EPS: f64 = 1e-12;
            if !(split.polluted_merge >= pm_lo - WILSON_EPS
                && split.polluted_merge <= pm_hi + WILSON_EPS)
            {
                return PairOutcome::disagree(
                    NAME,
                    format!(
                        "polluted merge: analytic {:?} outside [{pm_lo:?}, {pm_hi:?}]",
                        split.polluted_merge
                    ),
                );
            }
            PairOutcome::agree(
                NAME,
                format!(
                    "sojourns + absorption agree over {} absorbed clusters",
                    report.absorbed
                ),
            )
        }
    }

    fn pair_meanfield_vs_exact(&self, s: &FuzzScenario) -> PairOutcome {
        const NAME: &str = "meanfield_vs_exact";
        let defense = match s.defense.build() {
            Ok(d) => d,
            Err(e) => return PairOutcome::skip(NAME, format!("defense spec: {e}")),
        };
        let states = s.state_count();
        if states > DENSE_STATE_CAP {
            // Both paths are sparse-capable, but the fuzz loop budgets
            // one draw at well under a second; big spaces are covered
            // by the dedicated sweep scenarios instead.
            return PairOutcome::skip(
                NAME,
                format!("{states} states above the fuzz cap ({DENSE_STATE_CAP})"),
            );
        }
        let model = match FluidModel::build_with_defense(&s.params(), defense.as_ref(), &s.initial)
        {
            Ok(m) => m,
            Err(e) => return PairOutcome::skip(NAME, format!("fluid build: {e}")),
        };
        let eq = match model.open_equilibrium() {
            Ok(eq) => eq,
            Err(e) => return PairOutcome::skip(NAME, format!("fluid equilibrium: {e}")),
        };
        let chain = ClusterChain::build_with_defense(&s.params(), defense.as_ref());
        let analysis = match ClusterAnalysis::from_chain(chain, s.initial.clone()) {
            Ok(a) => a,
            Err(e) => return PairOutcome::skip(NAME, format!("analytic pipeline: {e}")),
        };
        let (exact_safe, exact_polluted) = match analysis.steady_state_fractions() {
            Ok(f) => f,
            Err(e) => return PairOutcome::skip(NAME, format!("steady state: {e}")),
        };
        // The two paths share the renewal identity; disagreement beyond
        // solver tolerance is a real defect, never noise.
        for (name, mf, exact) in [
            ("steady_S", eq.safe_fraction, exact_safe),
            ("steady_P", eq.polluted_fraction, exact_polluted),
        ] {
            if !analytic_close(mf, exact) {
                return PairOutcome::disagree(
                    NAME,
                    format!("{name}: mean-field = {mf:?} vs exact = {exact:?}"),
                );
            }
        }
        PairOutcome::agree(
            NAME,
            format!("stationary fractions agree at {states} states"),
        )
    }

    fn pair_meanfield_vs_des(
        &self,
        s: &FuzzScenario,
        base: Option<&DesOverlayReport>,
    ) -> PairOutcome {
        const NAME: &str = "meanfield_vs_des";
        if s.strategy != StrategyChoice::Targeted {
            return PairOutcome::skip(NAME, "the fluid limit models the targeted adversary only");
        }
        if !s.regenerate {
            return PairOutcome::skip(NAME, "stationary comparison needs regeneration mode");
        }
        let Some(report) = base else {
            return PairOutcome::skip(NAME, "defense spec failed to build");
        };
        if report.measured_cycles < MIN_CYCLES {
            return PairOutcome::skip(
                NAME,
                format!(
                    "{} completed cycles below the informative minimum {MIN_CYCLES}",
                    report.measured_cycles
                ),
            );
        }
        let defense = match s.defense.build() {
            Ok(d) => d,
            Err(e) => return PairOutcome::skip(NAME, format!("defense spec: {e}")),
        };
        let model = match FluidModel::build_with_defense(&s.params(), defense.as_ref(), &s.initial)
        {
            Ok(m) => m,
            Err(e) => return PairOutcome::skip(NAME, format!("fluid build: {e}")),
        };
        let eq = match model.open_equilibrium() {
            Ok(eq) => eq,
            Err(e) => return PairOutcome::skip(NAME, format!("fluid equilibrium: {e}")),
        };
        let (lo, hi) = renewal_wilson(
            report.polluted_event_total,
            report.events - report.warmup_events,
            report.measured_cycles,
            AGREEMENT_SIGMAS,
        );
        // The fluid prediction is exact only at M = ∞; the finite DES
        // overlay sits within O(1/M) of it, so the Wilson band gets one
        // finite-size term on top of the usual rounding epsilon.
        const WILSON_EPS: f64 = 1e-12;
        let band = 1.0 / (1u64 << s.cluster_bits) as f64 + WILSON_EPS;
        let want = eq.polluted_fraction;
        if want >= lo - band && want <= hi + band {
            PairOutcome::agree(
                NAME,
                format!(
                    "fluid polluted {want:.6} in [{lo:.6}, {hi:.6}] ± {band:.6} \
                     over {} cycles",
                    report.measured_cycles
                ),
            )
        } else {
            PairOutcome::disagree(
                NAME,
                format!(
                    "fluid polluted {want:?} outside [{lo:?}, {hi:?}] widened by \
                     {band:?} ({} cycles)",
                    report.measured_cycles
                ),
            )
        }
    }

    fn pair_shard_identity(
        &self,
        s: &FuzzScenario,
        base: Option<&DesOverlayReport>,
    ) -> PairOutcome {
        const NAME: &str = "shard_identity";
        let Some(base) = base else {
            return PairOutcome::skip(NAME, "defense spec failed to build");
        };
        let defense = match s.defense.build() {
            Ok(d) => d,
            Err(e) => return PairOutcome::skip(NAME, format!("defense spec: {e}")),
        };
        #[cfg(test)]
        let scenario = {
            let mut c = s.clone();
            if self.fault_is(Fault::DesLambdaRate) {
                c.lambda *= 1.0 + FAULT_EPS;
            }
            c
        };
        #[cfg(not(test))]
        let scenario = s.clone();
        let sharded = run_des_overlay_duel(
            &scenario.params(),
            &scenario.initial,
            &scenario.strategy(),
            defense.as_ref(),
            &scenario.des_config(scenario.shards),
            scenario.seed,
        );
        if &sharded == base {
            PairOutcome::agree(NAME, format!("byte-identical at 1 vs {} shards", s.shards))
        } else {
            PairOutcome::disagree(
                NAME,
                format!(
                    "1-shard vs {}-shard reports differ: events {} vs {}, end_time {:?} vs {:?}",
                    s.shards, base.events, sharded.events, base.end_time, sharded.end_time
                ),
            )
        }
    }

    fn pair_recorder_inertness(
        &self,
        s: &FuzzScenario,
        base: Option<&DesOverlayReport>,
    ) -> PairOutcome {
        const NAME: &str = "recorder_inertness";
        let Some(base) = base else {
            return PairOutcome::skip(NAME, "defense spec failed to build");
        };
        let defense = match s.defense.build() {
            Ok(d) => d,
            Err(e) => return PairOutcome::skip(NAME, format!("defense spec: {e}")),
        };
        let (observed, _, _) = run_des_overlay_duel_observed(
            &s.params(),
            &s.initial,
            &s.strategy(),
            defense.as_ref(),
            &s.des_config(s.shards),
            s.seed,
            16,
        );
        if &observed == base {
            PairOutcome::agree(
                NAME,
                format!("observed {}-shard run matches the plain report", s.shards),
            )
        } else {
            PairOutcome::disagree(
                NAME,
                format!(
                    "observed run diverges from the plain report: events {} vs {}",
                    observed.events, base.events
                ),
            )
        }
    }

    fn pair_sweep_threads(&self, s: &FuzzScenario) -> PairOutcome {
        const NAME: &str = "sweep_threads";
        let scenario = s.sweep_scenario();
        let run = |threads: usize| {
            SweepRunner::new()
                .with_threads(threads)
                .with_seed(s.seed)
                .run(&scenario)
        };
        let one = match run(1) {
            Ok(r) => r,
            Err(e) => return PairOutcome::skip(NAME, format!("sweep failed: {e}")),
        };
        let two = match run(2) {
            Ok(r) => r,
            Err(e) => return PairOutcome::skip(NAME, format!("sweep failed: {e}")),
        };
        if one.to_tsv() == two.to_tsv() && one.to_json() == two.to_json() {
            PairOutcome::agree(
                NAME,
                format!("kind {} byte-identical at 1 vs 2 threads", s.kind.label()),
            )
        } else {
            PairOutcome::disagree(
                NAME,
                format!(
                    "kind {} artefacts differ across thread counts",
                    s.kind.label()
                ),
            )
        }
    }

    fn fault_is(&self, fault: Fault) -> bool {
        self.fault == Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ScenarioGen;

    /// A cheap, well-behaved scenario for direct runner tests.
    fn small_scenario() -> FuzzScenario {
        let mut gen = ScenarioGen::new(2011);
        loop {
            let s = gen.next_scenario();
            if s.state_count() <= DENSE_STATE_CAP
                && s.strategy == StrategyChoice::Targeted
                && s.cluster_bits <= 3
            {
                return s;
            }
        }
    }

    #[test]
    fn healthy_runner_reports_no_disagreement() {
        let runner = DiffRunner::new();
        let verdict = runner.run(&small_scenario());
        assert_eq!(verdict.pairs.len(), PAIR_NAMES.len());
        for (pair, name) in verdict.pairs.iter().zip(PAIR_NAMES) {
            assert_eq!(pair.name, name);
            assert_ne!(
                pair.status,
                PairStatus::Disagree,
                "{}: {}",
                pair.name,
                pair.detail
            );
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let runner = DiffRunner::new();
        let s = small_scenario();
        assert_eq!(runner.run(&s), runner.run(&s));
    }

    #[test]
    fn run_pair_matches_full_run() {
        let runner = DiffRunner::new();
        let s = small_scenario();
        let verdict = runner.run(&s);
        for pair in &verdict.pairs {
            assert_eq!(&runner.run_pair(&s, pair.name), pair);
        }
    }

    #[test]
    #[should_panic(expected = "unknown oracle pair")]
    fn unknown_pair_names_panic() {
        DiffRunner::new().run_pair(&small_scenario(), "nonsense");
    }

    /// The first seed-2011 scenario where the CSR fault is injectable.
    /// The tiniest chains absorb after one event no matter what the
    /// transition probabilities are, so injection legitimately reports
    /// "nothing to perturb" there (the pair skips); the self-check needs
    /// a chain whose sojourn metrics actually depend on a probability.
    fn csr_faultable_scenario() -> (FuzzScenario, PairOutcome) {
        let runner = DiffRunner::with_fault(Fault::SparseCsrEntry);
        let mut gen = ScenarioGen::new(2011);
        for _ in 0..200 {
            let s = gen.next_scenario();
            if s.state_count() > DENSE_STATE_CAP {
                continue;
            }
            let outcome = runner.run_pair(&s, "dense_vs_sparse");
            if outcome.status != PairStatus::Skip {
                return (s, outcome);
            }
        }
        panic!("no CSR-faultable scenario within 200 draws");
    }

    #[test]
    fn csr_fault_is_detected_by_the_analytic_pair() {
        let (_, outcome) = csr_faultable_scenario();
        assert_eq!(outcome.status, PairStatus::Disagree, "{}", outcome.detail);
    }

    #[test]
    fn lambda_fault_is_detected_by_the_shard_pair() {
        let runner = DiffRunner::with_fault(Fault::DesLambdaRate);
        let outcome = runner.run_pair(&small_scenario(), "shard_identity");
        assert_eq!(outcome.status, PairStatus::Disagree, "{}", outcome.detail);
    }
}
