//! The regression corpus: shrunk failures on disk, replayed forever.
//!
//! Every disagreement the fuzzer ever finds is shrunk and committed as
//! one JSON file under `tests/regressions/`; `tests/fuzz_regressions.rs`
//! replays the whole directory through a healthy [`crate::DiffRunner`]
//! on every `cargo test`, and the `fuzz` binary replays it (via
//! `--replay`) before fuzzing. Files are loaded in name order so replay
//! output is deterministic.

use crate::scenario::FuzzScenario;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Loads every `*.json` scenario in `dir`, sorted by file name.
///
/// # Errors
///
/// I/O errors are returned as-is; a file that fails to parse becomes an
/// [`io::ErrorKind::InvalidData`] error naming the file, so a corrupt
/// corpus fails loudly instead of silently shrinking coverage.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(String, FuzzScenario)>> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    names.sort();
    let mut corpus = Vec::with_capacity(names.len());
    for path in names {
        let text = fs::read_to_string(&path)?;
        let scenario = FuzzScenario::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        corpus.push((name, scenario));
    }
    Ok(corpus)
}

/// Writes a shrunk failure as `<dir>/<name>.json` (creating `dir` if
/// needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_failure(dir: &Path, name: &str, scenario: &FuzzScenario) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, scenario.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ScenarioGen;

    #[test]
    fn corpus_round_trips_through_the_filesystem() {
        let dir = std::env::temp_dir().join("pollux-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let mut gen = ScenarioGen::new(99);
        let a = gen.next_scenario();
        let b = gen.next_scenario();
        write_failure(&dir, "b_second", &b).expect("write");
        write_failure(&dir, "a_first", &a).expect("write");
        fs::write(dir.join("notes.txt"), "not json").expect("write");
        let corpus = load_corpus(&dir).expect("load");
        // Name-sorted, non-JSON files ignored.
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].0, "a_first.json");
        assert_eq!(corpus[0].1, a);
        assert_eq!(corpus[1].1, b);
        // A corrupt file fails loudly.
        fs::write(dir.join("zz_bad.json"), "{").expect("write");
        assert!(load_corpus(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
