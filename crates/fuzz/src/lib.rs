//! `pollux-fuzz` — a scenario fuzzer and differential oracle over every
//! Pollux evaluation path.
//!
//! The repo's correctness claim rests on three independent evaluation
//! paths — dense analytics, sparse analytics and the sharded
//! whole-overlay DES — agreeing wherever they overlap, plus a defense
//! layer and a sweep engine that must be deterministic across thread
//! and shard counts. The unit suites pin that agreement on hand-picked
//! grids; this crate random-walks the **joint configuration space** and
//! cross-examines every applicable path pair per sampled point, in the
//! fuzzer / value-generator / runner / metrics module shape:
//!
//! * [`generator`] — the seeded value generator ([`ScenarioGen`]):
//!   byte-reproducible scenario streams from one `u64` seed, walking
//!   the constructor-invalid edges (`Δ = 1`, `k = 0`) and extreme-rate
//!   corners deliberately, with [`Coverage`] counters per variant.
//! * [`runner`] — the differential oracle ([`DiffRunner`]): five pair
//!   checks per scenario (dense-vs-sparse to 1e-9, analytic-vs-DES via
//!   the shared Wilson criteria, 1-vs-N-shard byte-identity, recorder
//!   inertness, sweep thread-identity), all tolerances pinned to
//!   [`pollux_prob::tolerance`].
//! * [`mod@shrink`] — greedy minimization of a disagreeing scenario while
//!   the same pair keeps failing.
//! * [`corpus`] — shrunk failures as JSON under `tests/regressions/`,
//!   replayed forever by `cargo test` and by the `fuzz` binary.
//! * [`metrics`] — the coverage counters surfaced in the summary JSON.
//!
//! The `fuzz` binary drives [`run_fuzz`] with `--seed`, `--iterations`
//! and `--time-budget-ms`; its summary JSON contains no wall-clock
//! values, so two runs with the same seed and iteration count are
//! byte-identical (CI diffs them).

pub mod corpus;
pub mod generator;
mod json;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use generator::{ScenarioGen, DENSE_STATE_CAP};
pub use metrics::Coverage;
pub use runner::{DiffRunner, PairOutcome, PairStatus, Verdict, PAIR_NAMES};
pub use scenario::{AnyStrategy, FuzzScenario, StrategyChoice, SweepKindChoice};
pub use shrink::{shrink, ShrinkOutcome};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Predicate-evaluation budget per shrink (see [`shrink()`]).
pub const SHRINK_BUDGET: usize = 300;

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Seed of the scenario stream.
    pub seed: u64,
    /// Scenario count target.
    pub iterations: u64,
    /// Optional wall-clock budget; the loop stops *between* scenarios
    /// once it is exhausted (summary JSON never contains timings, so a
    /// binding budget changes `scenarios_run` but nothing else).
    pub time_budget: Option<Duration>,
}

/// Per-pair tallies over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTally {
    /// Scenarios on which the pair reached a verdict.
    pub checked: u64,
    /// … and agreed.
    pub agreed: u64,
    /// … and disagreed.
    pub disagreed: u64,
    /// Scenarios on which the pair's preconditions were unmet.
    pub skipped: u64,
}

/// One shrunk disagreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Disagreement {
    /// Stream index of the original scenario.
    pub scenario_id: u64,
    /// The failing pair (one of [`PAIR_NAMES`]).
    pub pair: &'static str,
    /// The original failure detail.
    pub detail: String,
    /// The shrunk minimal scenario.
    pub shrunk: FuzzScenario,
    /// Predicate evaluations the shrink spent.
    pub attempts: usize,
}

/// Everything a fuzz run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The stream seed.
    pub seed: u64,
    /// Requested scenario count.
    pub iterations_requested: u64,
    /// Scenarios actually run (lower only when the time budget bound).
    pub scenarios_run: u64,
    /// Whether the time budget stopped the loop early.
    pub budget_exhausted: bool,
    /// Tallies per oracle pair, keyed by [`PAIR_NAMES`] entries.
    pub pair_tallies: BTreeMap<&'static str, PairTally>,
    /// Generator coverage counters.
    pub coverage: Coverage,
    /// Shrunk disagreements, in discovery order.
    pub disagreements: Vec<Disagreement>,
}

impl FuzzReport {
    /// `true` when no pair disagreed on any scenario.
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// Total pair verdicts reached (`checked` over all pairs).
    pub fn pairs_checked(&self) -> u64 {
        self.pair_tallies.values().map(|t| t.checked).sum()
    }

    /// The summary as deterministic JSON: fixed field order, ordered
    /// maps, no wall-clock values. Two runs with the same seed and
    /// iteration count produce byte-identical summaries.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"iterations_requested\": {},",
            self.iterations_requested
        );
        let _ = writeln!(out, "  \"scenarios_run\": {},", self.scenarios_run);
        let _ = writeln!(out, "  \"budget_exhausted\": {},", self.budget_exhausted);
        let _ = writeln!(out, "  \"pairs_checked\": {},", self.pairs_checked());
        let _ = writeln!(out, "  \"disagreements\": {},", self.disagreements.len());
        out.push_str("  \"pairs\": {\n");
        for (i, (name, t)) in self.pair_tallies.iter().enumerate() {
            let comma = if i + 1 < self.pair_tallies.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"checked\": {}, \"agreed\": {}, \"disagreed\": {}, \
                 \"skipped\": {}}}{comma}",
                t.checked, t.agreed, t.disagreed, t.skipped
            );
        }
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"coverage\": {},", self.coverage.to_json());
        out.push_str("  \"failures\": [\n");
        for (i, d) in self.disagreements.iter().enumerate() {
            let comma = if i + 1 < self.disagreements.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"scenario_id\": {}, \"pair\": \"{}\", \"detail\": \"{}\", \
                 \"shrink_attempts\": {}}}{comma}",
                d.scenario_id,
                d.pair,
                json::escape(&d.detail),
                d.attempts
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the fuzz loop: generate → run every oracle pair → on
/// disagreement, shrink and record.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_inner(config, DiffRunner::new())
}

/// Test-only entry point with a fault-injected runner (the oracle
/// self-check).
#[cfg(test)]
pub(crate) fn run_fuzz_with_fault(config: &FuzzConfig, fault: runner::Fault) -> FuzzReport {
    run_fuzz_inner(config, DiffRunner::with_fault(fault))
}

fn run_fuzz_inner(config: &FuzzConfig, runner: DiffRunner) -> FuzzReport {
    let start = Instant::now();
    let mut gen = ScenarioGen::new(config.seed);
    let mut pair_tallies: BTreeMap<&'static str, PairTally> = PAIR_NAMES
        .iter()
        .map(|&n| (n, PairTally::default()))
        .collect();
    let mut disagreements = Vec::new();
    let mut scenarios_run = 0u64;
    let mut budget_exhausted = false;

    while scenarios_run < config.iterations {
        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                budget_exhausted = true;
                break;
            }
        }
        let scenario = gen.next_scenario();
        let verdict = runner.run(&scenario);
        for pair in &verdict.pairs {
            let tally = pair_tallies.entry(pair.name).or_default();
            match pair.status {
                PairStatus::Agree => {
                    tally.checked += 1;
                    tally.agreed += 1;
                }
                PairStatus::Disagree => {
                    tally.checked += 1;
                    tally.disagreed += 1;
                }
                PairStatus::Skip => tally.skipped += 1,
            }
        }
        if let Some(failure) = verdict.failure() {
            let out = shrink(&runner, &scenario, failure.name, SHRINK_BUDGET);
            disagreements.push(Disagreement {
                scenario_id: scenario.id,
                pair: failure.name,
                detail: failure.detail.clone(),
                shrunk: out.scenario,
                attempts: out.attempts,
            });
        }
        scenarios_run += 1;
    }

    FuzzReport {
        seed: config.seed,
        iterations_requested: config.iterations,
        scenarios_run,
        budget_exhausted,
        pair_tallies,
        coverage: gen.coverage().clone(),
        disagreements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Fault;
    use std::path::Path;

    fn quick_config(iterations: u64) -> FuzzConfig {
        FuzzConfig {
            seed: 2011,
            iterations,
            time_budget: None,
        }
    }

    /// The oracle self-check, CSR half: a 1e-3 perturbation of one CSR
    /// entry on the sparse path is detected within a handful of
    /// scenarios, shrunk within the budget, and the minimal config is
    /// exactly the one committed under `tests/regressions/`.
    #[test]
    fn csr_fault_is_detected_shrunk_and_matches_the_corpus() {
        let report = run_fuzz_with_fault(&quick_config(4), Fault::SparseCsrEntry);
        let hit = report
            .disagreements
            .iter()
            .find(|d| d.pair == "dense_vs_sparse")
            .expect("a 1e-3 CSR fault must be caught within 4 scenarios");
        assert!(
            hit.attempts <= SHRINK_BUDGET,
            "shrink must stay within budget (spent {})",
            hit.attempts
        );
        let committed = corpus_file("fault_sparse_csr_entry.json");
        assert_eq!(
            hit.shrunk.to_json(),
            committed,
            "the committed corpus entry must be the shrinker's minimal config"
        );
    }

    /// The oracle self-check, DES half: a `λ · (1 + 1e-3)` rate fault
    /// in the sharded run breaks byte-identity, is shrunk, and matches
    /// the committed corpus entry.
    #[test]
    fn lambda_fault_is_detected_shrunk_and_matches_the_corpus() {
        let report = run_fuzz_with_fault(&quick_config(2), Fault::DesLambdaRate);
        let hit = report
            .disagreements
            .iter()
            .find(|d| d.pair == "shard_identity")
            .expect("a 1e-3 λ fault must be caught within 2 scenarios");
        assert!(hit.attempts <= SHRINK_BUDGET);
        let committed = corpus_file("fault_des_lambda_rate.json");
        assert_eq!(hit.shrunk.to_json(), committed);
    }

    /// Same seed → byte-identical summary JSON (the CI reproducibility
    /// contract), and a healthy run over a small slice stays green.
    #[test]
    fn healthy_slice_is_green_and_reproducible() {
        let a = run_fuzz(&quick_config(3));
        let b = run_fuzz(&quick_config(3));
        assert!(a.ok(), "unexpected disagreement:\n{}", a.summary_json());
        assert_eq!(a.summary_json(), b.summary_json());
        assert_eq!(a.scenarios_run, 3);
        assert!(a.pairs_checked() > 0);
    }

    /// A zero time budget stops before the first scenario and says so.
    #[test]
    fn zero_budget_stops_early() {
        let report = run_fuzz(&FuzzConfig {
            seed: 2011,
            iterations: 10,
            time_budget: Some(Duration::ZERO),
        });
        assert!(report.budget_exhausted);
        assert_eq!(report.scenarios_run, 0);
        assert!(report.summary_json().contains("\"budget_exhausted\": true"));
    }

    /// Regenerates the committed fault-corpus entries from the shrinker
    /// itself. Run manually after an intentional oracle change:
    /// `cargo test -p pollux-fuzz -- --ignored regenerate_fault_corpus`
    #[test]
    #[ignore = "writes tests/regressions/; run manually to regenerate the fault corpus"]
    fn regenerate_fault_corpus() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/regressions");
        let report = run_fuzz_with_fault(&quick_config(4), Fault::SparseCsrEntry);
        let hit = report
            .disagreements
            .iter()
            .find(|d| d.pair == "dense_vs_sparse")
            .expect("CSR fault caught");
        corpus::write_failure(&dir, "fault_sparse_csr_entry", &hit.shrunk).expect("write");
        let report = run_fuzz_with_fault(&quick_config(2), Fault::DesLambdaRate);
        let hit = report
            .disagreements
            .iter()
            .find(|d| d.pair == "shard_identity")
            .expect("λ fault caught");
        corpus::write_failure(&dir, "fault_des_lambda_rate", &hit.shrunk).expect("write");
    }

    fn corpus_file(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/regressions")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("corpus file {} must exist: {e}", path.display()))
    }
}
