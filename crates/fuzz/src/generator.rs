//! The seeded value generator: a random walk over the joint
//! configuration space.
//!
//! One `u64` seed determines the whole scenario stream. The generator
//! draws every field in a **fixed order** from the vendored
//! deterministic [`rand::rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), so the stream — and therefore the entire fuzz run — is
//! byte-reproducible across machines and thread counts.
//!
//! The walk deliberately steps onto the constructor-invalid edges the
//! model guards against (`Δ = 1`, `k = 0`): those raw draws are pushed
//! through [`ModelParams::new`] so the rejection path is exercised on
//! every occurrence, then clamped to the nearest valid value and
//! recorded in the [`Coverage`] counters. Extreme-but-valid `μ`/`d`
//! corners get dedicated probability mass for the same reason.

use crate::metrics::Coverage;
use crate::scenario::{FuzzScenario, QueueBackendChoice, StrategyChoice, SweepKindChoice};
use pollux::{AnalysisMode, InitialCondition, ModelParams};
use pollux_defense::DefenseSpec;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Dense-pipeline ceiling of the dense-vs-sparse oracle pair (states).
/// Kept here because the generator's size ranges are chosen so a healthy
/// fraction of scenarios falls under it; the runner enforces it.
pub const DENSE_STATE_CAP: usize = 400;

/// Seeded scenario stream with coverage accounting.
#[derive(Debug)]
pub struct ScenarioGen {
    rng: StdRng,
    next_id: u64,
    coverage: Coverage,
}

impl ScenarioGen {
    /// A fresh stream; the same `seed` always yields the same stream.
    pub fn new(seed: u64) -> Self {
        ScenarioGen {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            coverage: Coverage::new(),
        }
    }

    /// The accumulated coverage counters.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Draws the next scenario. Field draw order is part of the
    /// reproducibility contract — do not reorder.
    pub fn next_scenario(&mut self) -> FuzzScenario {
        let rng = &mut self.rng;
        let cov = &mut self.coverage;

        // Model sizes, walking through the invalid edges deliberately.
        let c: usize = rng.random_range(1..=8);
        let delta_raw: usize = rng.random_range(1..=12);
        let k_raw: usize = rng.random_range(0..=c);
        let delta = if ModelParams::new(c, delta_raw, k_raw.max(1)).is_err() {
            // Δ = 1 violates max_spare ≥ 2 and must be rejected.
            cov.hit("edge.delta_raw_1");
            2
        } else {
            delta_raw
        };
        let k = if k_raw == 0 {
            // k = 0 violates 1 ≤ k ≤ C and must be rejected.
            debug_assert!(ModelParams::new(c, delta, 0).is_err());
            cov.hit("edge.k_raw_0");
            1
        } else {
            k_raw
        };

        // Rates, with dedicated mass on the extreme corners.
        let mu = match rng.random_range(0..10u32) {
            0 => {
                cov.hit("edge.mu_zero");
                0.0
            }
            1 => {
                cov.hit("edge.mu_extreme");
                0.85
            }
            _ => rng.random_range(0.0..0.6),
        };
        let d = match rng.random_range(0..10u32) {
            0 => {
                cov.hit("edge.d_zero");
                0.0
            }
            1 => {
                cov.hit("edge.d_extreme");
                0.94
            }
            _ => rng.random_range(0.0..0.9),
        };
        let nu = rng.random_range(0.05..0.5);

        let rule1 = rng.random_bool(0.5);
        let rule2 = rng.random_bool(0.5);
        let bias = rng.random_bool(0.5);
        cov.hit(format!(
            "toggles.{}{}{}",
            u8::from(rule1),
            u8::from(rule2),
            u8::from(bias)
        ));

        let initial = if rng.random_bool(0.5) {
            InitialCondition::Delta
        } else {
            InitialCondition::Beta
        };
        cov.hit(format!("initial.{}", initial.label()));

        let strategy = StrategyChoice::ALL[rng.random_range(0..StrategyChoice::ALL.len())];
        cov.hit(format!("strategy.{}", strategy.label()));

        let defense = match rng.random_range(0..4u32) {
            0 => DefenseSpec::Null,
            1 => DefenseSpec::InducedChurn {
                rate: rng.random_range(0.01..0.3),
            },
            2 => DefenseSpec::IncarnationRefresh {
                period: rng.random_range(2.0..20.0),
                detection_prob: rng.random_range(0.1..1.0),
            },
            _ => DefenseSpec::AdaptiveClusterSize {
                target_fraction: rng.random_range(0.25..1.0),
            },
        };
        cov.hit(format!("defense.{}", defense_key(&defense)));

        let mode = match rng.random_range(0..3u32) {
            0 => AnalysisMode::Auto,
            1 => AnalysisMode::Dense,
            _ => AnalysisMode::Sparse,
        };
        cov.hit(format!("mode.{}", mode_key(&mode)));

        // DES overlay knobs, sized so a debug-build replay stays fast.
        let cluster_bits: u32 = rng.random_range(2..=5);
        let lambda = [0.5, 1.0, 2.0][rng.random_range(0..3usize)];
        let events_per_cluster: u64 = rng.random_range(100..=400);
        let regenerate = rng.random_bool(0.5);
        cov.hit(if regenerate { "regen.on" } else { "regen.off" });
        // Per-cluster warm-up. Regeneration runs always warm up half the
        // budget (the steady-state estimator carries an O(1/budget)
        // fresh-δ transient otherwise); plain runs fuzz the zero-warm-up
        // path too.
        let warmup_events = if regenerate {
            events_per_cluster / 2
        } else {
            [0, events_per_cluster / 4][rng.random_range(0..2usize)]
        };
        let n_samples = rng.random_range(0..=3usize);
        let mut sample_times: Vec<f64> = (0..n_samples)
            .map(|_| rng.random_range(0.0..50.0))
            .collect();
        sample_times.sort_by(f64::total_cmp);
        let shards: usize = rng.random_range(2..=8);
        cov.hit(format!("shards.{shards}"));

        // Event-queue backend and the work-stealing shard plan: every
        // DES-running oracle pair exercises the drawn combination.
        let queue = QueueBackendChoice::ALL[rng.random_range(0..QueueBackendChoice::ALL.len())];
        cov.hit(format!("queue.{}", queue.label()));
        let steal = rng.random_bool(0.5);
        let steal_skew = if steal { rng.random_range(0..4u32) } else { 0 };
        cov.hit(if steal {
            format!("steal.on.{steal_skew}")
        } else {
            "steal.off".into()
        });

        let kind = SweepKindChoice::ALL[rng.random_range(0..SweepKindChoice::ALL.len())];
        cov.hit(format!("kind.{}", kind.label()));

        let seed = rng.next_u64();

        let id = self.next_id;
        self.next_id += 1;
        FuzzScenario {
            id,
            seed,
            c,
            delta,
            k,
            mu,
            d,
            nu,
            rule1,
            rule2,
            bias,
            initial,
            strategy,
            defense,
            mode,
            cluster_bits,
            lambda,
            events_per_cluster,
            regenerate,
            warmup_events,
            sample_times,
            shards,
            queue,
            steal,
            steal_skew,
            kind,
        }
    }
}

fn defense_key(spec: &DefenseSpec) -> &'static str {
    match spec {
        DefenseSpec::Null => "null",
        DefenseSpec::InducedChurn { .. } => "induced_churn",
        DefenseSpec::IncarnationRefresh { .. } => "incarnation_refresh",
        DefenseSpec::AdaptiveClusterSize { .. } => "adaptive_cluster_size",
        // `DefenseSpec` is non-exhaustive; the generator only draws the
        // four variants above.
        _ => unreachable!("generator never draws unknown defense variants"),
    }
}

fn mode_key(mode: &AnalysisMode) -> &'static str {
    match mode {
        AnalysisMode::Auto => "auto",
        AnalysisMode::Dense => "dense",
        AnalysisMode::Sparse => "sparse",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Asserts every constructor invariant a scenario must satisfy.
    fn assert_valid(s: &FuzzScenario) {
        // `params()` panics on violation, so this is the whole check for
        // (C, Δ, k, μ, d, ν, toggles).
        let params = s.params();
        assert_eq!(params.state_count(), s.state_count());
        assert!(s.k >= 1 && s.k <= s.c);
        assert!(s.delta >= 2);
        assert!((2..=5).contains(&s.cluster_bits));
        assert!(s.lambda > 0.0);
        assert!((100..=400).contains(&s.events_per_cluster));
        assert!(s.warmup_events < s.events_per_cluster);
        assert!((2..=8).contains(&s.shards));
        assert!(s.steal_skew <= 3);
        assert!(s.steal || s.steal_skew == 0);
        assert!(s.sample_times.windows(2).all(|w| w[0] <= w[1]));
        // The strategy and defense build without error.
        let _ = s.strategy();
        s.defense.build().expect("defense spec in valid range");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ScenarioGen::new(42);
        let mut b = ScenarioGen::new(42);
        for _ in 0..50 {
            assert_eq!(a.next_scenario(), b.next_scenario());
        }
        assert_eq!(a.coverage(), b.coverage());
        let mut c = ScenarioGen::new(42);
        let mut d = ScenarioGen::new(43);
        let differs = (0..50).any(|_| c.next_scenario() != d.next_scenario());
        assert!(differs, "different seeds must diverge");
    }

    #[test]
    fn ten_thousand_draws_satisfy_every_invariant() {
        let mut gen = ScenarioGen::new(2011);
        for i in 0..10_000u64 {
            let s = gen.next_scenario();
            assert_eq!(s.id, i);
            assert_valid(&s);
        }
    }

    #[test]
    fn every_variant_is_hit_within_600_draws() {
        let mut gen = ScenarioGen::new(2011);
        for _ in 0..600 {
            gen.next_scenario();
        }
        let cov = gen.coverage();
        for s in StrategyChoice::ALL {
            assert!(cov.count(&format!("strategy.{}", s.label())) > 0, "{s:?}");
        }
        for key in [
            "defense.null",
            "defense.induced_churn",
            "defense.incarnation_refresh",
            "defense.adaptive_cluster_size",
            "mode.auto",
            "mode.dense",
            "mode.sparse",
            "initial.delta",
            "initial.beta",
            "regen.on",
            "regen.off",
            "edge.delta_raw_1",
            "edge.k_raw_0",
            "edge.mu_zero",
            "edge.mu_extreme",
            "edge.d_zero",
            "edge.d_extreme",
        ] {
            assert!(cov.count(key) > 0, "{key} never hit");
        }
        for kind in SweepKindChoice::ALL {
            assert!(cov.count(&format!("kind.{}", kind.label())) > 0, "{kind:?}");
        }
        for shards in 2..=8 {
            assert!(
                cov.count(&format!("shards.{shards}")) > 0,
                "shards {shards}"
            );
        }
        for queue in QueueBackendChoice::ALL {
            assert!(
                cov.count(&format!("queue.{}", queue.label())) > 0,
                "{queue:?}"
            );
        }
        assert!(cov.count("steal.off") > 0, "steal.off never hit");
        for skew in 0..=3 {
            assert!(
                cov.count(&format!("steal.on.{skew}")) > 0,
                "steal.on.{skew} never hit"
            );
        }
        // All 8 toggle combinations.
        for r1 in 0..2 {
            for r2 in 0..2 {
                for b in 0..2 {
                    let key = format!("toggles.{r1}{r2}{b}");
                    assert!(cov.count(&key) > 0, "{key} never hit");
                }
            }
        }
    }

    #[test]
    fn a_healthy_fraction_fits_under_the_dense_cap() {
        let mut gen = ScenarioGen::new(7);
        let under = (0..200)
            .filter(|_| gen.next_scenario().state_count() <= DENSE_STATE_CAP)
            .count();
        assert!(under >= 50, "only {under}/200 under the dense cap");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Invariants hold from arbitrary seeds, and the JSON encoding
        /// round-trips every generated scenario exactly.
        #[test]
        fn draws_are_valid_and_round_trip_from_any_seed(seed in any::<u64>()) {
            let mut gen = ScenarioGen::new(seed);
            for _ in 0..40 {
                let s = gen.next_scenario();
                assert_valid(&s);
                let back = FuzzScenario::from_json(&s.to_json()).expect("round trip");
                prop_assert_eq!(back, s);
            }
        }
    }
}
