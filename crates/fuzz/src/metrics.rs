//! Coverage counters over the generated scenario stream.
//!
//! Every categorical draw (strategy, defense, analysis mode, sweep
//! kind, initial condition, toggle combination) and every edge case the
//! generator deliberately walks into (Δ = 1 raw draws, k = 0 raw draws,
//! extreme μ/d) bumps a named counter. The summary JSON reports the
//! counters so a fuzz run proves *what* it exercised, and the generator
//! tests assert every enum variant is hit within a bounded draw count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Named hit counters, ordered (BTreeMap) so the JSON encoding is
/// byte-deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    counts: BTreeMap<String, u64>,
}

impl Coverage {
    /// An empty counter set.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Bumps `key` by one.
    pub fn hit(&mut self, key: impl Into<String>) {
        *self.counts.entry(key.into()).or_insert(0) += 1;
    }

    /// The count recorded under `key` (0 when never hit).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Iterates `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct keys hit at least once.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The counters as a JSON object literal (single line, key-ordered).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, count)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{key}\": {count}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_encode_in_key_order() {
        let mut cov = Coverage::new();
        cov.hit("z");
        cov.hit("a");
        cov.hit("z");
        assert_eq!(cov.count("z"), 2);
        assert_eq!(cov.count("a"), 1);
        assert_eq!(cov.count("missing"), 0);
        assert_eq!(cov.distinct(), 2);
        assert_eq!(cov.to_json(), "{\"a\": 1, \"z\": 2}");
    }
}
