//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;

use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::{power, vec_ops, Matrix};

/// A random matrix with entries in [-5, 5].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized correctly"))
}

/// A random well-conditioned (diagonally dominant) square matrix.
fn dd_matrix_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |mut m| {
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let left = a.matmul(&(&b + &c)).unwrap();
        let right = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_reverses_products(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn lu_solve_has_small_residual(
        a in dd_matrix_strategy(6),
        b in proptest::collection::vec(-10.0f64..10.0, 6),
    ) {
        let x = a.solve(&b).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x), &b);
        prop_assert!(vec_ops::norm_inf(&r) < 1e-8);
    }

    #[test]
    fn inverse_roundtrip(a in dd_matrix_strategy(5)) {
        let inv = a.inverse().unwrap();
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(5), 1e-8));
        prop_assert!(inv.matmul(&a).unwrap().approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn solve_transposed_is_row_solve(
        a in dd_matrix_strategy(5),
        b in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let x = a.solve_transposed(&b).unwrap();
        let r = vec_ops::sub(&a.vec_mul(&x), &b);
        prop_assert!(vec_ops::norm_inf(&r) < 1e-8);
    }

    #[test]
    fn csr_agrees_with_dense(a in matrix_strategy(4, 6), x in proptest::collection::vec(-3.0f64..3.0, 6), y in proptest::collection::vec(-3.0f64..3.0, 4)) {
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        prop_assert_eq!(sparse.to_dense(), a.clone());
        let d1 = a.mul_vec(&x);
        let s1 = sparse.mul_vec(&x);
        for (u, v) in d1.iter().zip(s1.iter()) {
            prop_assert!((u - v).abs() < 1e-12);
        }
        let d2 = a.vec_mul(&y);
        let s2 = sparse.vec_mul(&y);
        for (u, v) in d2.iter().zip(s2.iter()) {
            prop_assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_power_additive_in_exponent(a in matrix_strategy(3, 3), p in 0u64..5, q in 0u64..5) {
        // Normalize to keep the powers bounded.
        let scale = 1.0 / (a.norm_inf().max(1.0));
        let a = a.scale(scale);
        let lhs = power::matrix_power(&a, p + q).unwrap();
        let rhs = power::matrix_power(&a, p)
            .unwrap()
            .matmul(&power::matrix_power(&a, q).unwrap())
            .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn push_distribution_linear(a in matrix_strategy(4, 4), m in 0u64..6) {
        let scale = 1.0 / (a.norm_inf().max(1.0));
        let a = a.scale(scale);
        let e0 = vec![1.0, 0.0, 0.0, 0.0];
        let e1 = vec![0.0, 1.0, 0.0, 0.0];
        let both = vec![0.5, 0.5, 0.0, 0.0];
        let r0 = power::push_distribution(&a, &e0, m).unwrap();
        let r1 = power::push_distribution(&a, &e1, m).unwrap();
        let rb = power::push_distribution(&a, &both, m).unwrap();
        for i in 0..4 {
            prop_assert!((rb[i] - 0.5 * (r0[i] + r1[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn gather_scatter_are_inverse(values in proptest::collection::vec(-9.0f64..9.0, 8)) {
        let idx = [0usize, 3, 5, 7];
        let g = vec_ops::gather(&values, &idx);
        let s = vec_ops::scatter(8, &idx, &g);
        for &i in &idx {
            prop_assert_eq!(s[i], values[i]);
        }
    }
}
