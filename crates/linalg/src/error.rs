use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries `(left_rows, left_cols, right_rows, right_cols)`.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// Construction input was ragged or empty in a way that does not define
    /// a rectangular matrix.
    InvalidDimensions(String),
    /// A factorization or solve hit a (numerically) singular matrix.
    ///
    /// Carries the pivot column at which elimination broke down.
    Singular {
        /// Column index of the vanishing pivot.
        pivot: usize,
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// An iterative solve exhausted its sweep budget without meeting the
    /// residual tolerance.
    ///
    /// Carries the sweep count and the final residual ∞-norm.
    NoConvergence {
        /// Sweeps performed before giving up.
        sweeps: usize,
        /// Residual ∞-norm at that point.
        residual: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::InvalidDimensions(msg) => {
                write!(f, "invalid matrix dimensions: {msg}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot in column {pivot})")
            }
            LinalgError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            LinalgError::NoConvergence { sweeps, residual } => write!(
                f,
                "iterative solve did not converge after {sweeps} sweeps (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
        let e = LinalgError::Singular { pivot: 7 };
        assert!(e.to_string().contains('7'));
        let e = LinalgError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));
        let e = LinalgError::InvalidDimensions("ragged rows".into());
        assert!(e.to_string().contains("ragged"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
