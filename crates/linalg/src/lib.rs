//! Dense and sparse linear-algebra kernels sized for absorbing Markov-chain
//! analysis.
//!
//! This crate backs the analytical side of the Pollux reproduction of
//! *Modeling and Evaluating Targeted Attacks in Large Scale Dynamic Systems*
//! (Anceaume, Sericola, Ludinard, Tronel — DSN 2011). The chains studied
//! there have a few hundred states, so the design targets correctness and
//! numerical robustness on small/medium dense systems rather than BLAS-level
//! throughput:
//!
//! * [`Matrix`] — row-major dense `f64` matrix with the usual algebra,
//!   sub-matrix extraction by index sets (needed to carve `M_S`, `M_SP`, …
//!   out of a partitioned transition matrix), and stochasticity checks.
//! * [`Lu`] — LU decomposition with partial pivoting, linear solves
//!   (`Ax = b`, `xA = b`), inverses and determinants.
//! * [`sparse::CsrMatrix`] — compressed sparse row matrix with fast
//!   vector–matrix iteration, used for the overlay-level computation
//!   `α (T/n + (1−1/n) I)^m` over hundreds of thousands of events.
//! * [`solver::TransientSolver`] — the sparse-first solver for
//!   `(I − Q) x = b` systems: dense LU below a size crossover
//!   (bit-stable for the paper-scale chains), deterministic SOR sweeps
//!   in O(nnz) per iteration above it, with batched and transposed
//!   solves. This is what lets the analytical pipeline reach 10⁴–10⁵
//!   state spaces.
//! * [`power`] — matrix powers and iterated distribution pushes.
//!
//! # Example
//!
//! ```
//! use pollux_linalg::Matrix;
//!
//! # fn main() -> Result<(), pollux_linalg::LinalgError> {
//! // Expected steps to absorption of a gambler's ruin from the middle state:
//! // N = (I - Q)^{-1}, t = N 1.
//! let q = Matrix::from_rows(&[&[0.0, 0.5], &[0.5, 0.0]])?;
//! let n = (&Matrix::identity(2) - &q).inverse()?;
//! let t = n.mul_vec(&[1.0, 1.0]);
//! assert!((t[0] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
mod lu;
mod matrix;
pub mod power;
pub mod solver;
pub mod sparse;
pub mod vec_ops;

pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use solver::{
    IterStats, KrylovBreakdown, SolverObsSnapshot, SolverOptions, TransientSolver,
    DEFAULT_SPARSE_CROSSOVER,
};

/// Default absolute tolerance used by the stochasticity checks.
pub const STOCHASTIC_TOL: f64 = 1e-9;
