use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{LinalgError, STOCHASTIC_TOL};

/// A dense, row-major `f64` matrix.
///
/// The type is deliberately small and predictable: storage is a single
/// `Vec<f64>` of length `rows * cols`, element access is `m[(i, j)]`, and all
/// fallible construction goes through `Result`. Operator overloads are
/// provided on references (`&a * &b`) so that chains of operations do not
/// consume their operands.
///
/// # Example
///
/// ```
/// use pollux_linalg::Matrix;
///
/// # fn main() -> Result<(), pollux_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = (&a * &b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of the index pair.
    ///
    /// ```
    /// use pollux_linalg::Matrix;
    /// let hilbert = Matrix::from_fn(3, 3, |i, j| 1.0 / (i + j + 1) as f64);
    /// assert_eq!(hilbert[(0, 0)], 1.0);
    /// ```
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if the rows are empty or
    /// have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidDimensions("no rows given".into()));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::InvalidDimensions("rows are empty".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidDimensions(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimensions(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the backing row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies one column into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Returns the transposed matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Extracts the sub-matrix with the given row and column index sets, in
    /// the given order (indices may repeat).
    ///
    /// This is the primitive used to carve the blocks `M_S`, `M_SP`,
    /// `M_PS`, … out of a partitioned transition matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        Matrix::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// Sum of each row.
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Maximum absolute row sum (the induced infinity norm).
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// `true` when every row sums to 1 within `tol` and all entries are
    /// non-negative: the matrix is (row-)stochastic.
    #[must_use]
    pub fn is_stochastic(&self, tol: f64) -> bool {
        self.data.iter().all(|&v| v >= -tol)
            && self.row_sums().iter().all(|&s| (s - 1.0).abs() <= tol)
    }

    /// `true` when all entries are non-negative and every row sums to at
    /// most `1 + tol`: the matrix is sub-stochastic.
    #[must_use]
    pub fn is_substochastic(&self, tol: f64) -> bool {
        self.data.iter().all(|&v| v >= -tol) && self.row_sums().iter().all(|&s| s <= 1.0 + tol)
    }

    /// Convenience wrapper for [`Matrix::is_stochastic`] with the default
    /// tolerance [`STOCHASTIC_TOL`].
    #[must_use]
    pub fn is_stochastic_default(&self) -> bool {
        self.is_stochastic(STOCHASTIC_TOL)
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "vector length {} does not match {} columns",
            x.len(),
            self.cols
        );
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect()
    }

    /// Vector–matrix product `x A` (row vector times matrix).
    ///
    /// This is the natural operation for pushing a probability distribution
    /// through a transition matrix.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    #[must_use]
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "vector length {} does not match {} rows",
            x.len(),
            self.rows
        );
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &aij) in self.row(i).iter().enumerate() {
                out[j] += xi * aij;
            }
        }
        out
    }

    /// Matrix product, checked for shape compatibility.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions
    /// differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Computes the matrix inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the matrix is singular and
    /// [`LinalgError::InvalidDimensions`] when it is not square.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        crate::Lu::decompose(self)?.inverse()
    }

    /// Entry-wise check against another matrix.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Show at most eight rows/cols to keep assert! failure output usable.
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  [")?;
            for j in 0..show_c {
                write!(f, "{:>10.6} ", self[(i, j)])?;
            }
            if show_c < self.cols {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ. Use explicit shape checks for fallible code.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix, LinalgError>;

    fn mul(self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.matmul(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = abc();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidDimensions(_)));
        assert!(Matrix::from_rows(&[]).is_err());
        let empty: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!((&m * &i).unwrap(), m);
        assert_eq!((&i * &m).unwrap(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = abc();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let want = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap();
        assert_eq!(c, want);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = abc();
        let err = a.matmul(&a).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn transpose_involution() {
        let a = abc();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn vector_products() {
        let a = abc();
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.vec_mul(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn submatrix_extracts_blocks() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = a.submatrix(&[0, 2], &[1, 3]);
        assert_eq!(b, Matrix::from_rows(&[&[1.0, 3.0], &[9.0, 11.0]]).unwrap());
    }

    #[test]
    fn stochastic_checks() {
        let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.1, 0.9]]).unwrap();
        assert!(p.is_stochastic(1e-12));
        assert!(p.is_substochastic(1e-12));
        let q = Matrix::from_rows(&[&[0.5, 0.4], &[0.1, 0.9]]).unwrap();
        assert!(!q.is_stochastic(1e-12));
        assert!(q.is_substochastic(1e-12));
        let neg = Matrix::from_rows(&[&[1.5, -0.5], &[0.1, 0.9]]).unwrap();
        assert!(!neg.is_stochastic(1e-12));
        assert!(!neg.is_substochastic(1e-12));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.row_sums(), vec![-1.0, 7.0]);
    }

    #[test]
    fn add_sub_neg_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let zero = &a - &a;
        assert!(zero.approx_eq(&Matrix::zeros(2, 2), 0.0));
        let doubled = &a + &a;
        assert!(doubled.approx_eq(&a.scale(2.0), 0.0));
        assert!((&-&a + &a).approx_eq(&Matrix::zeros(2, 2), 0.0));
    }

    #[test]
    fn debug_output_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
        let big = Matrix::zeros(20, 20);
        assert!(format!("{big:?}").contains("..."));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
