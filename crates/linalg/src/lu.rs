use crate::{LinalgError, Matrix};

/// LU decomposition with partial (row) pivoting: `P A = L U`.
///
/// The factors are stored compactly in a single matrix (`L` has an implicit
/// unit diagonal). The decomposition supports solving `A x = b`,
/// `x A = b` (the row-vector form used when pushing distributions through
/// `(I − M)^{-1}` from the left), computing the inverse, and the
/// determinant.
///
/// # Example
///
/// ```
/// use pollux_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), pollux_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

/// Pivots smaller than this (relative to the largest entry of the column
/// candidates) are treated as exact zeros, i.e. the matrix is singular.
const PIVOT_EPS: f64 = 1e-300;

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimensions`] if `a` is not square.
    /// * [`LinalgError::Singular`] if elimination encounters a vanishing
    ///   pivot.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidDimensions(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }

        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution with permuted b: L y = P b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * yj;
            }
            y[i] = acc;
        }
        // Backward substitution: U x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves the row-vector system `x A = b`, i.e. `Aᵀ xᵀ = bᵀ`.
    ///
    /// This is the shape used for `v = α (I − M)^{-1}` computations where
    /// `α` is a distribution (row) vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (1, b.len()),
            });
        }
        // x A = b  <=>  x P^{-1} P A = b  <=>  (x P^{-1}) L U = b.
        // Solve z U = b (forward in columns), then w L = z (backward), then
        // un-permute: x[perm[i]] = w[i].
        let mut z = vec![0.0; n];
        for j in 0..n {
            let mut acc = b[j];
            for (i, &zi) in z.iter().enumerate().take(j) {
                acc -= zi * self.lu[(i, j)];
            }
            z[j] = acc / self.lu[(j, j)];
        }
        let mut w = vec![0.0; n];
        for j in (0..n).rev() {
            let mut acc = z[j];
            for (i, &wi) in w.iter().enumerate().skip(j + 1) {
                acc -= wi * self.lu[(i, j)];
            }
            w[j] = acc; // L has unit diagonal.
        }
        let mut x = vec![0.0; n];
        for i in 0..n {
            x[self.perm[i]] = w[i];
        }
        Ok(x)
    }

    /// Computes `A^{-1}` column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur once decomposition succeeded,
    /// but the signature stays honest).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Determinant of the original matrix (product of pivots, signed by the
    /// permutation parity).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

impl Matrix {
    /// Solves `A x = b` through a fresh LU decomposition.
    ///
    /// Prefer building [`Lu`] once when solving against many right-hand
    /// sides.
    ///
    /// # Errors
    ///
    /// See [`Lu::decompose`] and [`Lu::solve`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Lu::decompose(self)?.solve(b)
    }

    /// Solves `x A = b` through a fresh LU decomposition.
    ///
    /// # Errors
    ///
    /// See [`Lu::decompose`] and [`Lu::solve_transposed`].
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Lu::decompose(self)?.solve_transposed(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_small_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = [8.0, -11.0, -3.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::InvalidDimensions(_))
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        assert!((Lu::decompose(&a).unwrap().det() - 10.0).abs() < 1e-12);
        // Permutation flips the sign relative to naive pivot product.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((Lu::decompose(&p).unwrap().det() - -1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_transposed_matches_transpose_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.1, 3.0, 0.2], &[0.3, 0.4, 5.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = a.solve_transposed(&b).unwrap();
        let x_ref = a.transpose().solve(&b).unwrap();
        for (u, v) in x.iter().zip(x_ref.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        // Verify residual of x A = b directly.
        let xa = a.vec_mul(&x);
        for (u, v) in xa.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_rhs_length_errors() {
        let a = Matrix::identity(3);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_transposed(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn random_solves_have_small_residuals() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for n in [1usize, 2, 5, 17, 40] {
            // Diagonally dominant => well conditioned and non-singular.
            let mut a = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
            let x = a.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-9, "n={n}");
            let xt = a.solve_transposed(&b).unwrap();
            let r = a
                .vec_mul(&xt)
                .iter()
                .zip(b.iter())
                .map(|(u, v)| (u - v).abs())
                .fold(0.0, f64::max);
            assert!(r < 1e-9, "transposed n={n}");
        }
    }
}
