//! Matrix powers and iterated distribution pushes.
//!
//! Two access patterns show up in transient Markov-chain analysis:
//!
//! * `A^m` for a moderate `m` — computed by binary exponentiation
//!   ([`matrix_power`]).
//! * `α A^m` for *every* `m` along the way (a trajectory of transient
//!   distributions) — computed by repeated vector–matrix products
//!   ([`DistributionIter`]), which is both cheaper (`O(m n²)` total instead
//!   of `O(n³ log m)`) and exactly what the overlay-level Theorem 2 of the
//!   DSN'11 paper needs.

use crate::{LinalgError, Matrix};

/// Computes `a^m` by binary exponentiation.
///
/// `a^0` is the identity.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidDimensions`] if `a` is not square.
pub fn matrix_power(a: &Matrix, mut m: u64) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::InvalidDimensions(format!(
            "matrix power requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut result = Matrix::identity(a.rows());
    let mut base = a.clone();
    while m > 0 {
        if m & 1 == 1 {
            result = result.matmul(&base)?;
        }
        m >>= 1;
        if m > 0 {
            base = base.matmul(&base)?;
        }
    }
    Ok(result)
}

/// Iterator over `α, αA, αA², …` for a fixed square matrix `A`.
///
/// Yields the *current* vector first (i.e. the first item is `α` itself at
/// step 0), then advances by one vector–matrix product per step.
///
/// # Example
///
/// ```
/// use pollux_linalg::{Matrix, power::DistributionIter};
///
/// # fn main() -> Result<(), pollux_linalg::LinalgError> {
/// let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]])?;
/// let mut it = DistributionIter::new(&p, vec![1.0, 0.0])?;
/// let step0 = it.next().unwrap();
/// assert_eq!(step0, vec![1.0, 0.0]);
/// let step1 = it.next().unwrap();
/// assert!((step1[1] - 0.1).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DistributionIter<'a> {
    matrix: &'a Matrix,
    current: Vec<f64>,
    /// Set once the iterator has yielded the initial vector.
    started: bool,
}

impl<'a> DistributionIter<'a> {
    /// Creates the iterator from a square matrix and an initial row vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `alpha.len()` differs from
    /// the matrix dimension, or [`LinalgError::InvalidDimensions`] if the
    /// matrix is not square.
    pub fn new(matrix: &'a Matrix, alpha: Vec<f64>) -> Result<Self, LinalgError> {
        if !matrix.is_square() {
            return Err(LinalgError::InvalidDimensions(format!(
                "distribution iteration requires a square matrix, got {}x{}",
                matrix.rows(),
                matrix.cols()
            )));
        }
        if alpha.len() != matrix.rows() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, alpha.len()),
                right: matrix.shape(),
            });
        }
        Ok(DistributionIter {
            matrix,
            current: alpha,
            started: false,
        })
    }

    /// The vector at the current step without advancing.
    pub fn current(&self) -> &[f64] {
        &self.current
    }
}

impl Iterator for DistributionIter<'_> {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        if !self.started {
            self.started = true;
            return Some(self.current.clone());
        }
        self.current = self.matrix.vec_mul(&self.current);
        Some(self.current.clone())
    }
}

/// Pushes `alpha` through `m` steps of `matrix` and returns `α A^m`.
///
/// # Errors
///
/// Same conditions as [`DistributionIter::new`].
pub fn push_distribution(matrix: &Matrix, alpha: &[f64], m: u64) -> Result<Vec<f64>, LinalgError> {
    let mut it = DistributionIter::new(matrix, alpha.to_vec())?;
    let mut last = it.next().expect("iterator yields the initial vector");
    for _ in 0..m {
        last = it.next().expect("iterator is infinite");
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_zero_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        assert!(matrix_power(&a, 0)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 0.0));
    }

    #[test]
    fn power_matches_repeated_multiplication() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
        let mut ref_pow = Matrix::identity(2);
        for m in 0..12u64 {
            let fast = matrix_power(&a, m).unwrap();
            assert!(
                fast.approx_eq(&ref_pow, 1e-12),
                "mismatch at power {m}: {fast:?} vs {ref_pow:?}"
            );
            ref_pow = ref_pow.matmul(&a).unwrap();
        }
    }

    #[test]
    fn power_rejects_non_square() {
        assert!(matrix_power(&Matrix::zeros(2, 3), 2).is_err());
    }

    #[test]
    fn distribution_iter_matches_power() {
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]]).unwrap();
        let alpha = vec![0.3, 0.7];
        let via_iter = push_distribution(&p, &alpha, 6).unwrap();
        let via_power = matrix_power(&p, 6).unwrap().vec_mul(&alpha);
        for (a, b) in via_iter.iter().zip(via_power.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn distribution_iter_preserves_mass_for_stochastic_matrices() {
        let p = Matrix::from_rows(&[&[0.2, 0.8], &[0.6, 0.4]]).unwrap();
        let it = DistributionIter::new(&p, vec![0.5, 0.5]).unwrap();
        for v in it.take(50) {
            let mass: f64 = v.iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn distribution_iter_validates_inputs() {
        let p = Matrix::zeros(2, 3);
        assert!(DistributionIter::new(&p, vec![1.0, 0.0]).is_err());
        let p = Matrix::identity(2);
        assert!(DistributionIter::new(&p, vec![1.0]).is_err());
    }
}
