//! Solvers for transient-chain systems `(I − Q) x = b`.
//!
//! Every analytical quantity of the DSN'11 pipeline — expected steps to
//! absorption, absorption probabilities, sojourn moments, hitting
//! probabilities — reduces to solves against `I − Q` where `Q` is the
//! (sub-stochastic) transient block of a Markov chain. Dense LU is exact
//! but O(n³) time / O(n²) memory; the transient blocks themselves are
//! extremely sparse (a handful of successors per state), so large chains
//! want an O(nnz)-per-sweep iterative method instead.
//!
//! [`TransientSolver`] packages the crossover: below
//! [`SolverOptions::crossover`] states it densifies `I − Q` and factors it
//! once with [`Lu`] (bit-stable, matching the historical dense pipeline);
//! at or above the crossover it keeps `Q` in CSR form and solves
//! iteratively, trying in order:
//!
//! 1. **BiCGSTAB** (van der Vorst) — the primary method; Krylov
//!    convergence leaves the O(Δ²)-sweep stationary methods far behind on
//!    the slowly mixing spare-level random walk of the cluster chain.
//!    Breakdowns, recursive-residual drift and non-finite excursions all
//!    resolve by restarting from the current iterate; a restart that
//!    fails to improve the true residual abandons the method.
//! 2. **Adaptive SOR** (Young's classical scheme) — sweeps start at
//!    `ω = 1` (plain Gauss–Seidel), the observed per-sweep contraction
//!    `μ` over a fixed window yields a Jacobi spectral-radius estimate
//!    `ρ(J) = (μ + ω − 1) / (ω √μ)`, and `ω` is re-tuned to
//!    `2 / (1 + √(1 − ρ(J)²))`, backing off (with iterate rollback) when
//!    over-relaxation misbehaves — non-reversible chains can have
//!    complex Jacobi spectra for which the real-spectrum formula
//!    overshoots. The learned `ω` is cached on the solver and carried
//!    across solves.
//! 3. **Plain Gauss–Seidel** with the full budget, before reporting
//!    [`LinalgError::NoConvergence`].
//!
//! Every returned solution has passed a *true-residual* verification
//! (not just the iteration's own stopping test).
//!
//! Determinism contract: every step — the Krylov recurrences, the sweep
//! order, the convergence tests — is a fixed function of the matrix and
//! the call sequence. No randomness, no time-outs, no thread-count
//! dependence: replaying the same solves on a fresh instance reproduces
//! bit-identical results on every run and every machine with the same
//! floating-point semantics. (Because the learned relaxation factor
//! carries across solves, an *individual* solve's trajectory depends on
//! the calls before it — the pipeline performs its solves in a fixed
//! order, so end results are reproducible.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sparse::CsrMatrix;
use crate::vec_ops::dot;
use crate::{LinalgError, Lu, Matrix};

/// Default state-count threshold at which [`TransientSolver`] switches
/// from dense LU to the sparse iterative path. Every chain of the paper's
/// own evaluation (≤ ~1000 states) stays on the bit-stable dense path.
pub const DEFAULT_SPARSE_CROSSOVER: usize = 1024;

/// Tuning knobs for [`TransientSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Systems smaller than this are solved by dense LU.
    pub crossover: usize,
    /// Relative residual tolerance of the iterative path.
    pub tol: f64,
    /// Sweep budget of the iterative path (per right-hand side).
    pub max_sweeps: usize,
    /// Apply a Jacobi (diagonal) preconditioner to the BiCGSTAB path:
    /// the Krylov recurrences run on the right-preconditioned system
    /// `A D⁻¹ z = b` with `D = diag(A)`, which rescales the
    /// strongly-self-looping rows of large cluster chains and cuts the
    /// iteration count on the Δ ≳ 100 state spaces (measured in
    /// `BENCH_markov.json`). Off by default: the paper-scale pipeline
    /// sits below the dense crossover anyway, and the unpreconditioned
    /// recurrence is the historical bit-exact reference. Only the
    /// iterative path ever consults this — the dense-LU side of the
    /// crossover is unaffected.
    pub jacobi: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            crossover: DEFAULT_SPARSE_CROSSOVER,
            tol: 1e-13,
            max_sweeps: 200_000,
            jacobi: false,
        }
    }
}

impl SolverOptions {
    /// Options that force the iterative path regardless of size (used by
    /// the equivalence tests and benchmarks).
    #[must_use]
    pub fn force_sparse() -> Self {
        SolverOptions {
            crossover: 0,
            ..SolverOptions::default()
        }
    }

    /// Options that force the dense path regardless of size.
    #[must_use]
    pub fn force_dense() -> Self {
        SolverOptions {
            crossover: usize::MAX,
            ..SolverOptions::default()
        }
    }

    /// Enables or disables the Jacobi-preconditioned BiCGSTAB path.
    #[must_use]
    pub fn with_jacobi(mut self, jacobi: bool) -> Self {
        self.jacobi = jacobi;
        self
    }
}

#[derive(Debug, Clone)]
enum Repr {
    /// Zero unknowns: every solve returns an empty vector.
    Empty,
    /// LU factors of the densified `I − Q`.
    Dense(Box<Lu>),
    /// CSR `Q`, its transpose, and the per-row diagonal of `I − Q`.
    Iterative {
        q: CsrMatrix,
        qt: CsrMatrix,
        /// `1 − Q_ii` per row (always positive for a transient block).
        diag: Vec<f64>,
        /// Learned relaxation factor and ceiling, carried across solves
        /// (the spectrum is a property of the matrix, not of the
        /// right-hand side, so later solves skip the warm-up). Stored as
        /// f64 bit patterns.
        omega_cache: Arc<OmegaCache>,
    },
}

/// A solver for `(I − Q) x = b` and `x (I − Q) = b` with `Q` a
/// sub-stochastic transient block, switching between dense LU and the
/// sparse iterative path (BiCGSTAB → adaptive SOR → Gauss–Seidel) at a
/// size crossover.
///
/// # Example
///
/// ```
/// use pollux_linalg::solver::{SolverOptions, TransientSolver};
/// use pollux_linalg::sparse::CsrMatrix;
///
/// # fn main() -> Result<(), pollux_linalg::LinalgError> {
/// // Fair gambler's-ruin transient block on {1, 2, 3}:
/// let q = CsrMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.5), (2, 1, 0.5)],
/// )?;
/// let solver = TransientSolver::new(&q, SolverOptions::default())?;
/// let steps = solver.solve(&[1.0, 1.0, 1.0])?; // N·1: expected absorption times
/// assert!((steps[1] - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSolver {
    n: usize,
    repr: Repr,
    tol: f64,
    max_sweeps: usize,
    jacobi: bool,
    /// Fault-injection hook: when set, the iterative path skips BiCGSTAB
    /// with a synthetic breakdown so the SOR fallback ladder (and its
    /// reporting) can be exercised deterministically.
    force_krylov_breakdown: bool,
    /// Cumulative routing/iteration counters, shared across clones (like
    /// the relaxation cache) so batched analyses aggregate naturally.
    obs: Arc<SolverObs>,
}

impl TransientSolver {
    /// Builds the solver for the transient block `q`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimensions`] if `q` is not square, has a
    ///   negative entry, or a row sums to more than 1 (plus a small
    ///   tolerance) — such a matrix is not a transient block.
    /// * [`LinalgError::Singular`] if the densified system is singular
    ///   (the block contains a closed class).
    pub fn new(q: &CsrMatrix, options: SolverOptions) -> Result<Self, LinalgError> {
        if q.rows() != q.cols() {
            return Err(LinalgError::InvalidDimensions(format!(
                "transient block must be square, got {}x{}",
                q.rows(),
                q.cols()
            )));
        }
        let n = q.rows();
        for i in 0..n {
            let mut sum = 0.0;
            for (_, v) in q.row_entries(i) {
                if v < 0.0 {
                    return Err(LinalgError::InvalidDimensions(format!(
                        "transient block row {i} has negative entry {v}"
                    )));
                }
                sum += v;
            }
            if sum > 1.0 + 1e-9 {
                return Err(LinalgError::InvalidDimensions(format!(
                    "transient block row {i} sums to {sum} > 1"
                )));
            }
        }

        let repr = if n == 0 {
            Repr::Empty
        } else if n < options.crossover {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                a[(i, i)] = 1.0;
                for (j, v) in q.row_entries(i) {
                    a[(i, j)] -= v;
                }
            }
            Repr::Dense(Box::new(Lu::decompose(&a)?))
        } else {
            let diag: Vec<f64> = (0..n).map(|i| 1.0 - q.get(i, i)).collect();
            if let Some(i) = diag.iter().position(|&d| d <= 0.0) {
                return Err(LinalgError::Singular { pivot: i });
            }
            let qt = q.transpose();
            Repr::Iterative {
                q: q.clone(),
                qt,
                diag,
                omega_cache: Arc::new(OmegaCache::new()),
            }
        };
        Ok(TransientSolver {
            n,
            repr,
            tol: options.tol,
            max_sweeps: options.max_sweeps,
            jacobi: options.jacobi,
            force_krylov_breakdown: false,
            obs: Arc::new(SolverObs::new()),
        })
    }

    /// Wraps an explicitly formed dense system `A` (usually `I − Q`),
    /// factoring it once. Dense analysis entry points use this to keep
    /// their historical bit-exact LU path while sharing the solver API.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError::Singular`] from the factorization.
    pub fn from_dense_system(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        let repr = if n == 0 {
            Repr::Empty
        } else {
            Repr::Dense(Box::new(Lu::decompose(a)?))
        };
        Ok(TransientSolver {
            n,
            repr,
            tol: SolverOptions::default().tol,
            max_sweeps: SolverOptions::default().max_sweeps,
            jacobi: false,
            force_krylov_breakdown: false,
            obs: Arc::new(SolverObs::new()),
        })
    }

    /// Replaces the BiCGSTAB attempt with a synthetic breakdown so the
    /// fallback ladder runs end to end. Fault-injection harnesses and
    /// tests use this to prove the SOR detour (and its machine-readable
    /// reporting) actually fires; it is not part of the stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn with_forced_krylov_breakdown(mut self) -> Self {
        self.force_krylov_breakdown = true;
        self
    }

    /// Number of unknowns.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` when this instance took the sparse iterative path.
    #[must_use]
    pub fn is_iterative(&self) -> bool {
        matches!(self.repr, Repr::Iterative { .. })
    }

    /// A snapshot of the solver's cumulative routing and iteration
    /// counters (shared across clones, so a batched analysis reads one
    /// aggregate). Observation only — the counters never influence how
    /// the solver routes or converges.
    #[must_use]
    pub fn obs_snapshot(&self) -> SolverObsSnapshot {
        SolverObsSnapshot {
            dense_solves: self.obs.dense_solves.load(Ordering::Relaxed),
            krylov_solves: self.obs.krylov_solves.load(Ordering::Relaxed),
            sor_solves: self.obs.sor_solves.load(Ordering::Relaxed),
            sor_fallbacks: self.obs.sor_fallbacks.load(Ordering::Relaxed),
            gs_fallbacks: self.obs.gs_fallbacks.load(Ordering::Relaxed),
            total_iterations: self.obs.total_iterations.load(Ordering::Relaxed),
            worst_residual: f64::from_bits(self.obs.worst_residual.load(Ordering::Relaxed)),
            krylov_failure_iterations: self.obs.krylov_failure_iterations.load(Ordering::Relaxed),
            krylov_failure_worst_residual: f64::from_bits(
                self.obs
                    .krylov_failure_worst_residual
                    .load(Ordering::Relaxed),
            ),
        }
    }

    /// Solves `(I − Q) x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] for a wrong-length `b`;
    /// [`LinalgError::NoConvergence`] if the sweep budget runs out.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.solve_impl(b, false).map(|(x, _)| x)
    }

    /// As [`TransientSolver::solve`], additionally reporting iteration
    /// statistics (`None` on the dense path).
    ///
    /// # Errors
    ///
    /// As [`TransientSolver::solve`].
    pub fn solve_with_stats(
        &self,
        b: &[f64],
    ) -> Result<(Vec<f64>, Option<IterStats>), LinalgError> {
        self.solve_impl(b, false)
    }

    /// Solves the transposed system `x (I − Q) = b`, i.e.
    /// `(I − Q)ᵀ x = b`.
    ///
    /// # Errors
    ///
    /// As [`TransientSolver::solve`].
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.solve_impl(b, true).map(|(x, _)| x)
    }

    /// Batched solve: one factorization / relaxation setup amortized over
    /// many right-hand sides.
    ///
    /// # Errors
    ///
    /// As [`TransientSolver::solve`]; the first failing right-hand side
    /// aborts the batch.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        rhs.iter().map(|b| self.solve(b)).collect()
    }

    fn solve_impl(
        &self,
        b: &[f64],
        transposed: bool,
    ) -> Result<(Vec<f64>, Option<IterStats>), LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                left: (self.n, self.n),
                right: (b.len(), 1),
            });
        }
        match &self.repr {
            Repr::Empty => Ok((Vec::new(), None)),
            Repr::Dense(lu) => {
                let x = if transposed {
                    lu.solve_transposed(b)?
                } else {
                    lu.solve(b)?
                };
                self.obs.note_dense();
                Ok((x, None))
            }
            Repr::Iterative {
                q,
                qt,
                diag,
                omega_cache,
            } => {
                // x (I − Q) = b is (I − Qᵀ) x = b: sweep over Qᵀ's rows
                // (the transposed system shares the spectrum, so it shares
                // the learned relaxation factor too).
                let m = if transposed { qt } else { q };
                let krylov = if self.force_krylov_breakdown {
                    Err(LinalgError::NoConvergence {
                        sweeps: 0,
                        residual: f64::INFINITY,
                    })
                } else {
                    self.bicgstab(m, diag, b)
                };
                // When BiCGSTAB fails, keep *why* (not just that it did):
                // the breakdown rides along into the returned stats so
                // callers see the reason machine-readably instead of on a
                // debug-only stderr line.
                let mut breakdown = None;
                let result = match krylov {
                    Ok(out) => {
                        self.obs.note_krylov();
                        Ok(out)
                    }
                    Err(e) => {
                        if let LinalgError::NoConvergence { sweeps, residual } = &e {
                            breakdown = Some(KrylovBreakdown {
                                sweeps: *sweeps,
                                residual: *residual,
                            });
                            self.obs.note_krylov_failure(*sweeps as u64, *residual);
                        }
                        if std::env::var_os("POLLUX_SOLVER_DEBUG").is_some() {
                            eprintln!("bicgstab fallback: {e}");
                        }
                        self.obs.note_sor_fallback();
                        self.sor(m, diag, b, Some(omega_cache))
                            .inspect(|_| self.obs.note_sor())
                            .or_else(|_| {
                                self.obs.note_gs_fallback();
                                self.sor(m, diag, b, None).inspect(|_| self.obs.note_sor())
                            })
                    }
                };
                result.map(|(x, mut stats)| {
                    stats.krylov_failure = breakdown;
                    self.obs.note_stats(stats.sweeps as u64, stats.residual);
                    (x, Some(stats))
                })
            }
        }
    }

    /// BiCGSTAB (van der Vorst) on `(I − M) x = b` — the primary iterative
    /// method: Krylov convergence is O(√κ)-ish in practice, far ahead of
    /// stationary sweeps on the slowly-mixing random-walk blocks of the
    /// cluster chain, and every operation is a fixed-order kernel so the
    /// run is bit-reproducible. Breakdown or stagnation (both possible for
    /// non-symmetric systems) surfaces as an error and the caller falls
    /// back to the SOR path; the final true-residual verification gates
    /// correctness in all cases.
    ///
    /// With [`SolverOptions::jacobi`] set, the recurrence runs
    /// right-preconditioned on `A D⁻¹` (`D = diag(A)`): the search
    /// directions are divided by the diagonal before each matrix apply,
    /// and the iterate update uses the preconditioned directions, so the
    /// returned `x` solves the *original* system and the residual test
    /// is unchanged.
    fn bicgstab(
        &self,
        m: &CsrMatrix,
        diag: &[f64],
        b: &[f64],
    ) -> Result<(Vec<f64>, IterStats), LinalgError> {
        let n = self.n;
        let b_scale = b.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
        let max_iters = (self.max_sweeps / 8).max(64);

        // (A y)_i = diag_i·y_i − Σ_{j≠i} M_ij y_j, A = I − M.
        let apply = |y: &[f64], out: &mut [f64]| {
            for i in 0..n {
                let mut acc = diag[i] * y[i];
                for (j, v) in m.row_entries(i) {
                    if j != i {
                        acc -= v * y[j];
                    }
                }
                out[i] = acc;
            }
        };

        let mut x = vec![0.0f64; n];
        let mut r = b.to_vec();
        let mut r_hat = r.clone();
        let mut rho = 1.0f64;
        let mut alpha = 1.0f64;
        let mut omega = 1.0f64;
        let mut v = vec![0.0f64; n];
        let mut p = vec![0.0f64; n];
        let mut s = vec![0.0f64; n];
        let mut t = vec![0.0f64; n];
        // Preconditioned search directions (empty when the Jacobi
        // preconditioner is off — no per-iteration cost on that path).
        let jacobi = self.jacobi;
        let mut p_hat = vec![0.0f64; if jacobi { n } else { 0 }];
        let mut s_hat = vec![0.0f64; if jacobi { n } else { 0 }];

        let inf_norm = |y: &[f64]| y.iter().fold(0.0f64, |acc, &u| acc.max(u.abs()));

        // Breakdowns (near-orthogonal shadow vector), recursive-residual
        // drift and non-finite excursions all resolve the same way: resync
        // `r` to the true residual of the current iterate, reset the
        // Krylov directions, and continue. Progress across restarts is
        // monitored so a genuinely stuck system still exits to the SOR
        // fallback.
        const MAX_RESTARTS: usize = 32;
        let mut restarts = 0usize;
        let mut last_restart_residual = f64::INFINITY;
        let mut iter = 0usize;

        macro_rules! restart {
            () => {{
                restarts += 1;
                if !inf_norm(&x).is_finite() {
                    x.fill(0.0);
                }
                apply(&x, &mut t);
                for i in 0..n {
                    r[i] = b[i] - t[i];
                }
                let now = inf_norm(&r);
                // NaN `now` must bail out too, so compare in the negated
                // form rather than `now >= …`.
                let improved = now < last_restart_residual * 0.99;
                if restarts > MAX_RESTARTS || !improved {
                    return Err(LinalgError::NoConvergence {
                        sweeps: iter,
                        residual: now,
                    });
                }
                last_restart_residual = now;
                r_hat.copy_from_slice(&r);
                rho = 1.0;
                alpha = 1.0;
                omega = 1.0;
                v.fill(0.0);
                p.fill(0.0);
                continue;
            }};
        }

        while iter < max_iters {
            iter += 1;
            let rho_new = dot(&r_hat, &r);
            if rho_new.abs() < f64::MIN_POSITIVE || !rho_new.is_finite() {
                restart!();
            }
            let beta = (rho_new / rho) * (alpha / omega);
            if !beta.is_finite() {
                restart!();
            }
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            if jacobi {
                for i in 0..n {
                    p_hat[i] = p[i] / diag[i];
                }
                apply(&p_hat, &mut v);
            } else {
                apply(&p, &mut v);
            }
            let denom = dot(&r_hat, &v);
            if denom.abs() < f64::MIN_POSITIVE || !denom.is_finite() {
                restart!();
            }
            alpha = rho_new / denom;
            for i in 0..n {
                s[i] = r[i] - alpha * v[i];
            }
            if jacobi {
                for i in 0..n {
                    s_hat[i] = s[i] / diag[i];
                }
                apply(&s_hat, &mut t);
            } else {
                apply(&s, &mut t);
            }
            let tt = dot(&t, &t);
            omega = if tt > 0.0 { dot(&t, &s) / tt } else { 0.0 };
            if !omega.is_finite() {
                restart!();
            }
            if jacobi {
                for i in 0..n {
                    x[i] += alpha * p_hat[i] + omega * s_hat[i];
                    r[i] = s[i] - omega * t[i];
                }
            } else {
                for i in 0..n {
                    x[i] += alpha * p[i] + omega * s[i];
                    r[i] = s[i] - omega * t[i];
                }
            }
            let r_norm = inf_norm(&r);
            if !r_norm.is_finite() {
                restart!();
            }
            let x_scale = inf_norm(&x).max(1.0);
            if r_norm <= self.tol * b_scale.max(x_scale) {
                // The recursive residual can drift from the true one;
                // verify, and resync if it has.
                let residual = residual_inf(m, diag, &x, b);
                if residual <= 10.0 * self.tol * b_scale.max(x_scale) {
                    return Ok((
                        x,
                        IterStats {
                            sweeps: iter,
                            omega: f64::NAN,
                            residual,
                            krylov_failure: None,
                        },
                    ));
                }
                restart!();
            }
            rho = rho_new;
        }
        Err(LinalgError::NoConvergence {
            sweeps: max_iters,
            residual: inf_norm(&r),
        })
    }

    /// SOR sweeps on `(I − M) x = b` where `diag[i] = 1 − M_ii`.
    ///
    /// With a cache supplied, the relaxation factor starts from the value
    /// learned by earlier solves on this matrix and is re-tuned every
    /// [`OMEGA_WINDOW`] sweeps from the observed contraction rate via
    /// Young's formula; with `None` it stays at 1 for the whole run (the
    /// plain Gauss–Seidel fallback). The iterate is checkpointed at every
    /// accepted window so a mis-tuned over-relaxation only ever costs one
    /// window of sweeps.
    fn sor(
        &self,
        m: &CsrMatrix,
        diag: &[f64],
        b: &[f64],
        cache: Option<&Arc<OmegaCache>>,
    ) -> Result<(Vec<f64>, IterStats), LinalgError> {
        let n = self.n;
        let mut x = vec![0.0f64; n];
        let b_scale = b.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
        let (mut omega, mut omega_cap) = match cache {
            Some(c) => c.load(),
            None => (1.0, 1.0),
        };
        // Checkpoint of the last accepted iterate: a diverging window is
        // rolled back instead of restarting the whole solve.
        let mut checkpoint = x.clone();
        let mut sweeps = 0usize;
        let mut residual = f64::INFINITY;
        let mut window_start_delta = f64::NAN;
        while sweeps < self.max_sweeps {
            let mut delta = 0.0f64;
            for i in 0..n {
                let mut acc = b[i];
                for (j, v) in m.row_entries(i) {
                    if j != i {
                        acc += v * x[j];
                    }
                }
                let candidate = acc / diag[i];
                let new_xi = x[i] + omega * (candidate - x[i]);
                delta = delta.max((new_xi - x[i]).abs());
                x[i] = new_xi;
            }
            sweeps += 1;
            let x_scale = x.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
            if !(delta.is_finite() && x_scale < 1e100) {
                // Over-relaxation diverged outright: roll back to the last
                // good iterate under a tighter ceiling. (Genuine transient
                // solutions live far below this scale.)
                x.copy_from_slice(&checkpoint);
                omega_cap = 1.0 + (omega - 1.0) * 0.5;
                omega = omega_cap;
                window_start_delta = f64::NAN;
                continue;
            }
            if delta <= self.tol * x_scale {
                residual = residual_inf(m, diag, &x, b);
                if residual <= 10.0 * self.tol * b_scale.max(x_scale) {
                    if let Some(c) = cache {
                        c.store(omega, omega_cap);
                    }
                    return Ok((
                        x,
                        IterStats {
                            sweeps,
                            omega,
                            residual,
                            krylov_failure: None,
                        },
                    ));
                }
            }
            if cache.is_some() {
                if sweeps.is_multiple_of(OMEGA_WINDOW) {
                    if window_start_delta.is_finite() && window_start_delta > 0.0 && delta > 0.0 {
                        let mu = (delta / window_start_delta).powf(1.0 / OMEGA_WINDOW as f64);
                        if mu >= 1.0 && omega > 1.0 {
                            // Growing over a full window: roll back and
                            // back the factor off toward Gauss–Seidel.
                            x.copy_from_slice(&checkpoint);
                            omega_cap = omega_cap.min(1.0 + (omega - 1.0) * 0.75);
                            omega = 1.0 + (omega - 1.0) * 0.5;
                            window_start_delta = f64::NAN;
                            continue;
                        }
                        omega = retuned_omega(omega, mu, omega_cap);
                    }
                    checkpoint.copy_from_slice(&x);
                    window_start_delta = delta;
                } else if sweeps % OMEGA_WINDOW == 1 {
                    window_start_delta = delta;
                }
            }
        }
        Err(LinalgError::NoConvergence { sweeps, residual })
    }
}

/// Cumulative observation counters of a [`TransientSolver`]: which path
/// produced each solution (LU routing vs Krylov vs SOR), how often the
/// fallback ladder was descended, total iterations and the worst
/// verified residual. Shared across clones via `Arc` (the
/// [`OmegaCache`] pattern), updated with a handful of relaxed atomics
/// per *solve* — never per iteration — so the cost is unconditionally
/// negligible and needs no feature gate. Purely observational: counters
/// never influence routing, tolerances or iteration counts.
#[derive(Debug, Default)]
struct SolverObs {
    dense_solves: AtomicU64,
    krylov_solves: AtomicU64,
    sor_solves: AtomicU64,
    sor_fallbacks: AtomicU64,
    gs_fallbacks: AtomicU64,
    total_iterations: AtomicU64,
    /// Monotonic max, stored as f64 bits (non-negative residuals order
    /// identically as bits).
    worst_residual: AtomicU64,
    /// Krylov iterations spent inside failed BiCGSTAB attempts (wasted
    /// work the fallback ladder then redid).
    krylov_failure_iterations: AtomicU64,
    /// Worst residual a failed BiCGSTAB attempt gave up at (f64 bits,
    /// monotonic max like `worst_residual`).
    krylov_failure_worst_residual: AtomicU64,
}

impl SolverObs {
    fn new() -> Self {
        SolverObs::default()
    }

    fn note_dense(&self) {
        self.dense_solves.fetch_add(1, Ordering::Relaxed);
    }

    fn note_krylov(&self) {
        self.krylov_solves.fetch_add(1, Ordering::Relaxed);
    }

    fn note_sor(&self) {
        self.sor_solves.fetch_add(1, Ordering::Relaxed);
    }

    fn note_sor_fallback(&self) {
        self.sor_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn note_gs_fallback(&self) {
        self.gs_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn note_krylov_failure(&self, sweeps: u64, residual: f64) {
        self.krylov_failure_iterations
            .fetch_add(sweeps, Ordering::Relaxed);
        // NaN (a breakdown can give up before any finite residual) maps
        // to 0 under `max`, same as `note_stats`.
        self.krylov_failure_worst_residual
            .fetch_max(residual.max(0.0).to_bits(), Ordering::Relaxed);
    }

    fn note_stats(&self, sweeps: u64, residual: f64) {
        self.total_iterations.fetch_add(sweeps, Ordering::Relaxed);
        // Residuals are non-negative, so their bit patterns order like
        // the values and fetch_max needs no CAS loop.
        self.worst_residual
            .fetch_max(residual.max(0.0).to_bits(), Ordering::Relaxed);
    }
}

/// A point-in-time copy of a solver's cumulative observation counters
/// (see [`TransientSolver::obs_snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverObsSnapshot {
    /// Solves answered by the dense LU path.
    pub dense_solves: u64,
    /// Solves answered by BiCGSTAB.
    pub krylov_solves: u64,
    /// Solves answered by (adaptive) SOR after a fallback.
    pub sor_solves: u64,
    /// Times BiCGSTAB failed and the cached-relaxation SOR ran.
    pub sor_fallbacks: u64,
    /// Times the cached SOR also failed and the from-scratch sweep
    /// (starting at the Gauss–Seidel factor ω = 1) ran.
    pub gs_fallbacks: u64,
    /// Total iterations over all iterative solves (Krylov iterations
    /// plus SOR sweeps).
    pub total_iterations: u64,
    /// Worst verified residual ∞-norm over all iterative solves.
    pub worst_residual: f64,
    /// Krylov iterations spent inside BiCGSTAB attempts that then failed
    /// over to the stationary ladder — wasted work, kept separate from
    /// [`SolverObsSnapshot::total_iterations`] (which only counts the
    /// attempts that produced the solution).
    pub krylov_failure_iterations: u64,
    /// Worst residual a failed BiCGSTAB attempt gave up at (`0.0` when
    /// no attempt ever failed).
    pub krylov_failure_worst_residual: f64,
}

impl SolverObsSnapshot {
    /// Total solves this solver answered, over all paths.
    #[must_use]
    pub fn total_solves(&self) -> u64 {
        self.dense_solves + self.krylov_solves + self.sor_solves
    }
}

/// Shared store for the learned relaxation factor and its ceiling.
#[derive(Debug)]
struct OmegaCache {
    omega: AtomicU64,
    cap: AtomicU64,
}

impl OmegaCache {
    fn new() -> Self {
        OmegaCache {
            omega: AtomicU64::new(1.0f64.to_bits()),
            cap: AtomicU64::new(1.95f64.to_bits()),
        }
    }

    fn load(&self) -> (f64, f64) {
        (
            f64::from_bits(self.omega.load(Ordering::Relaxed)),
            f64::from_bits(self.cap.load(Ordering::Relaxed)),
        )
    }

    fn store(&self, omega: f64, cap: f64) {
        self.omega.store(omega.to_bits(), Ordering::Relaxed);
        self.cap.store(cap.to_bits(), Ordering::Relaxed);
    }
}

/// Sweep count between relaxation-factor updates of the adaptive scheme.
const OMEGA_WINDOW: usize = 24;

/// Young's update: from the contraction rate `mu` observed under the
/// current factor `omega`, recover the Jacobi spectral radius
/// `ρ(J) = (μ + ω − 1) / (ω √μ)` and return the corresponding optimal
/// factor `2 / (1 + √(1 − ρ²))`, capped at `omega_cap`. A stalled or
/// growing contraction backs the factor off toward Gauss–Seidel instead.
fn retuned_omega(omega: f64, mu: f64, omega_cap: f64) -> f64 {
    if !(mu.is_finite() && mu > 0.0) {
        return omega;
    }
    // Not contracting: the current factor is too aggressive — back off.
    if mu >= 1.0 {
        return 1.0 + (omega - 1.0) * 0.5;
    }
    let rho = (mu + omega - 1.0) / (omega * mu.sqrt());
    if !(0.0..1.0).contains(&rho) {
        return omega;
    }
    let next = 2.0 / (1.0 + (1.0 - rho * rho).max(0.0).sqrt());
    next.clamp(1.0, omega_cap)
}

/// `‖b − (I − M) x‖_∞` with `M` given row-wise and `diag[i] = 1 − M_ii`.
fn residual_inf(m: &CsrMatrix, diag: &[f64], x: &[f64], b: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..m.rows() {
        let mut r = b[i] - diag[i] * x[i];
        for (j, v) in m.row_entries(i) {
            if j != i {
                r += v * x[j];
            }
        }
        worst = worst.max(r.abs());
    }
    worst
}

/// Why a BiCGSTAB attempt gave up: the iterations it burned and the
/// residual it was stuck at when the solver descended to the stationary
/// fallback ladder. Carried on [`IterStats::krylov_failure`] so callers
/// get the reason machine-readably rather than on a debug-only stderr
/// line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovBreakdown {
    /// Krylov iterations performed before abandoning the method.
    pub sweeps: usize,
    /// Residual ∞-norm at the point of giving up (may be non-finite —
    /// a breakdown can diverge before measuring anything useful).
    pub residual: f64,
}

/// Iteration statistics of a sparse solve (see
/// [`TransientSolver::solve_with_stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterStats {
    /// Iterations performed (Krylov iterations or SOR sweeps).
    pub sweeps: usize,
    /// Final relaxation factor of the adaptive SOR scheme; `NaN` when the
    /// BiCGSTAB path produced the solution (no relaxation involved).
    pub omega: f64,
    /// Verified residual ∞-norm of the returned solution.
    pub residual: f64,
    /// `Some` when this solution came from the fallback ladder after a
    /// BiCGSTAB breakdown, carrying why the Krylov attempt failed;
    /// `None` when BiCGSTAB answered directly.
    pub krylov_failure: Option<KrylovBreakdown>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gambler's-ruin transient block on `{1, …, n}` (absorbing barriers
    /// removed): tridiagonal with `p` up and `1 − p` down.
    fn ruin_block(n: usize, p: f64) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n {
            if i + 1 < n {
                triplets.push((i, i + 1, p));
            }
            if i > 0 {
                triplets.push((i, i - 1, 1.0 - p));
            }
        }
        CsrMatrix::from_triplet_vec(n, n, triplets).unwrap()
    }

    #[test]
    fn obs_counters_track_routing_without_changing_results() {
        let q = ruin_block(50, 0.5);
        let ones = vec![1.0; 50];
        let dense = TransientSolver::new(&q, SolverOptions::force_dense()).unwrap();
        let sparse = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        assert_eq!(dense.obs_snapshot(), SolverObsSnapshot::default());

        let xd = dense.solve(&ones).unwrap();
        let snap = dense.obs_snapshot();
        assert_eq!(snap.dense_solves, 1);
        assert_eq!(snap.total_solves(), 1);
        assert_eq!(snap.total_iterations, 0);

        let xs = sparse.solve(&ones).unwrap();
        let _ = sparse.solve_transposed(&ones).unwrap();
        let snap = sparse.obs_snapshot();
        assert_eq!(snap.dense_solves, 0);
        assert_eq!(snap.krylov_solves + snap.sor_solves, 2);
        assert!(snap.total_iterations > 0);
        assert!(snap.worst_residual >= 0.0 && snap.worst_residual < 1e-8);

        // Clones share the counters (one aggregate per logical solver)…
        let clone = sparse.clone();
        let _ = clone.solve(&ones).unwrap();
        assert_eq!(sparse.obs_snapshot().total_solves(), 3);
        // …and observation never perturbs the numerics.
        for (a, b) in xd.iter().zip(xs.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn forced_krylov_breakdown_descends_the_ladder_and_records_why() {
        let q = ruin_block(60, 0.5);
        let ones = vec![1.0; 60];
        let honest = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        let broken = TransientSolver::new(&q, SolverOptions::force_sparse())
            .unwrap()
            .with_forced_krylov_breakdown();

        let (xh, sh) = honest.solve_with_stats(&ones).unwrap();
        let (xb, sb) = broken.solve_with_stats(&ones).unwrap();
        // The ladder still lands the verified answer…
        for (a, b) in xh.iter().zip(xb.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }

        // …and the stats say why the detour happened.
        let stats = sb.expect("iterative path reports stats");
        let why = stats.krylov_failure.expect("breakdown recorded in stats");
        assert_eq!(why.sweeps, 0);
        assert!(why.residual.is_infinite());
        assert!(!stats.omega.is_nan(), "solution came from SOR, not Krylov");
        // A solve BiCGSTAB answered itself records no failure.
        assert!(sh.expect("stats").krylov_failure.is_none());

        let snap = broken.obs_snapshot();
        assert_eq!(snap.krylov_solves, 0);
        assert_eq!(snap.sor_solves, 1);
        assert_eq!(snap.sor_fallbacks, 1);
        assert_eq!(snap.gs_fallbacks, 0);
        assert_eq!(snap.krylov_failure_iterations, 0);
        assert!(snap.krylov_failure_worst_residual.is_infinite());
        let honest_snap = honest.obs_snapshot();
        assert_eq!(honest_snap.krylov_failure_iterations, 0);
        assert_eq!(honest_snap.krylov_failure_worst_residual, 0.0);
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let q = ruin_block(40, 0.5);
        let ones = vec![1.0; 40];
        let dense = TransientSolver::new(&q, SolverOptions::force_dense()).unwrap();
        let sparse = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        assert!(!dense.is_iterative());
        assert!(sparse.is_iterative());
        let xd = dense.solve(&ones).unwrap();
        let xs = sparse.solve(&ones).unwrap();
        for (a, b) in xd.iter().zip(xs.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        // Closed form: E[steps from state i] = (i+1)(n−i) for the fair walk.
        for (i, v) in xd.iter().enumerate() {
            let want = ((i + 1) * (40 - i)) as f64;
            assert!((v - want).abs() < 1e-8, "i={i}: {v} vs {want}");
        }
    }

    #[test]
    fn transposed_solves_agree() {
        let q = ruin_block(30, 0.35);
        let mut b = vec![0.0; 30];
        b[4] = 1.0;
        b[17] = 0.25;
        let dense = TransientSolver::new(&q, SolverOptions::force_dense()).unwrap();
        let sparse = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        let xd = dense.solve_transposed(&b).unwrap();
        let xs = sparse.solve_transposed(&b).unwrap();
        for (a, c) in xd.iter().zip(xs.iter()) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn batched_solves_match_individual() {
        let q = ruin_block(12, 0.5);
        let solver = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                (0..12)
                    .map(|i| if i % 3 == k { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let batched = solver.solve_many(&rhs).unwrap();
        // Later solves start from the learned relaxation factor, so they
        // are equivalent to the residual tolerance rather than bit-equal.
        for (b, x) in rhs.iter().zip(batched.iter()) {
            for (u, v) in solver.solve(b).unwrap().iter().zip(x.iter()) {
                assert!((u - v).abs() < 1e-10, "{u} vs {v}");
            }
        }
        // A fresh instance replays the identical call sequence
        // bit-identically (the determinism contract).
        let replay = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        assert_eq!(replay.solve_many(&rhs).unwrap(), batched);
    }

    #[test]
    fn crossover_picks_the_path() {
        let q = ruin_block(8, 0.5);
        let opts = SolverOptions {
            crossover: 9,
            ..SolverOptions::default()
        };
        assert!(!TransientSolver::new(&q, opts).unwrap().is_iterative());
        let opts = SolverOptions {
            crossover: 8,
            ..SolverOptions::default()
        };
        assert!(TransientSolver::new(&q, opts).unwrap().is_iterative());
    }

    #[test]
    fn iterative_path_beats_stationary_sweeps_on_large_walks() {
        // Plain Gauss–Seidel needs ~3·n² ≈ 500k sweeps on this slowly
        // mixing walk; the Krylov path must land the right answer in a
        // tiny fraction of that.
        let n = 400;
        let q = ruin_block(n, 0.5);
        let solver = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        let (x, stats) = solver.solve_with_stats(&vec![1.0; n]).unwrap();
        let stats = stats.expect("iterative path reports stats");
        assert!(stats.sweeps < 10_000, "iterations = {}", stats.sweeps);
        let mid = x[n / 2 - 1];
        let want = ((n / 2) * (n - n / 2 + 1)) as f64;
        // The solution magnitude is ~n²/4, so judge the residual
        // relatively.
        assert!(
            stats.residual < 1e-8 * want,
            "residual = {}",
            stats.residual
        );
        assert!((mid - want).abs() / want < 1e-9, "{mid} vs {want}");
    }

    /// A lazy walk: heavy, *state-dependent* self-loops give `I − Q` a
    /// strongly varying diagonal — the regime a Jacobi preconditioner
    /// actually rescales (a constant diagonal makes it the identity).
    fn lazy_ruin_block(n: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n {
            let stay = 0.05 + 0.9 * (i as f64 / n as f64);
            let hop = (1.0 - stay) / 2.0;
            triplets.push((i, i, stay));
            if i + 1 < n {
                triplets.push((i, i + 1, hop));
            }
            if i > 0 {
                triplets.push((i, i - 1, hop));
            }
        }
        CsrMatrix::from_triplet_vec(n, n, triplets).unwrap()
    }

    #[test]
    fn jacobi_preconditioned_path_agrees_with_dense_and_plain() {
        let q = lazy_ruin_block(300);
        let ones = vec![1.0; 300];
        let dense = TransientSolver::new(&q, SolverOptions::force_dense()).unwrap();
        let plain = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        let jacobi =
            TransientSolver::new(&q, SolverOptions::force_sparse().with_jacobi(true)).unwrap();
        let xd = dense.solve(&ones).unwrap();
        let (xp, sp) = plain.solve_with_stats(&ones).unwrap();
        let (xj, sj) = jacobi.solve_with_stats(&ones).unwrap();
        let scale = xd.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        for i in 0..300 {
            assert!((xd[i] - xj[i]).abs() < 1e-8 * scale, "i={i}");
            assert!((xd[i] - xp[i]).abs() < 1e-8 * scale, "i={i}");
        }
        // Both iterative runs landed on the Krylov path (omega is NaN
        // only for BiCGSTAB results) and the preconditioned one did not
        // regress the iteration count on this varied-diagonal system.
        let (sp, sj) = (sp.unwrap(), sj.unwrap());
        assert!(sp.omega.is_nan() && sj.omega.is_nan());
        assert!(
            sj.sweeps <= sp.sweeps + 8,
            "jacobi {} vs plain {}",
            sj.sweeps,
            sp.sweeps
        );
        // Transposed solves share the preconditioner.
        let xt = jacobi.solve_transposed(&ones).unwrap();
        let xtd = dense.solve_transposed(&ones).unwrap();
        for i in 0..300 {
            assert!((xt[i] - xtd[i]).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn jacobi_is_identity_on_unit_diagonals() {
        // Zero self-loops: D = I, so preconditioned and plain runs are
        // the *same* recurrence, bit for bit.
        let q = ruin_block(64, 0.4);
        let b: Vec<f64> = (0..64).map(|i| (i % 5) as f64).collect();
        let plain = TransientSolver::new(&q, SolverOptions::force_sparse()).unwrap();
        let jacobi =
            TransientSolver::new(&q, SolverOptions::force_sparse().with_jacobi(true)).unwrap();
        assert_eq!(plain.solve(&b).unwrap(), jacobi.solve(&b).unwrap());
    }

    #[test]
    fn rejects_bad_blocks() {
        // Not square.
        let q = CsrMatrix::from_triplets(2, 3, &[(0, 0, 0.5)]).unwrap();
        assert!(TransientSolver::new(&q, SolverOptions::default()).is_err());
        // Negative entry.
        let q = CsrMatrix::from_triplets(2, 2, &[(0, 1, -0.5)]).unwrap();
        assert!(TransientSolver::new(&q, SolverOptions::default()).is_err());
        // Super-stochastic row.
        let q = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.7), (0, 1, 0.5)]).unwrap();
        assert!(TransientSolver::new(&q, SolverOptions::default()).is_err());
        // Wrong-length right-hand side.
        let q = ruin_block(4, 0.5);
        let solver = TransientSolver::new(&q, SolverOptions::default()).unwrap();
        assert!(solver.solve(&[1.0]).is_err());
    }

    #[test]
    fn closed_class_is_singular_on_the_iterative_path() {
        // Row 0 is a self-loop with probability 1: 1 − Q_00 = 0.
        let q = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 0.5)]).unwrap();
        let r = TransientSolver::new(&q, SolverOptions::force_sparse());
        assert!(matches!(r, Err(LinalgError::Singular { pivot: 0 })));
    }

    #[test]
    fn empty_block() {
        let q = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let solver = TransientSolver::new(&q, SolverOptions::default()).unwrap();
        assert_eq!(solver.n(), 0);
        assert_eq!(solver.solve(&[]).unwrap(), Vec::<f64>::new());
    }
}
