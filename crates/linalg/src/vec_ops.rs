//! Free functions on `&[f64]` slices treated as (row) vectors.
//!
//! Probability vectors flow through the whole analysis pipeline; these
//! helpers keep the call sites readable without committing to a heavyweight
//! vector newtype.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Sum of all entries (the total mass of a measure).
#[must_use]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Maximum absolute entry.
#[must_use]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// L1 norm.
#[must_use]
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Entry-wise `a + b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector addition length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Entry-wise `a - b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector subtraction length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// `a * s` into a new vector.
#[must_use]
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|v| v * s).collect()
}

/// `true` when the vector is a probability distribution within `tol`:
/// non-negative entries summing to 1.
#[must_use]
pub fn is_distribution(a: &[f64], tol: f64) -> bool {
    a.iter().all(|&v| v >= -tol) && (sum(a) - 1.0).abs() <= tol
}

/// Normalizes a non-negative vector to unit mass, returning `None` when the
/// total mass is zero (there is nothing meaningful to normalize to).
#[must_use]
pub fn normalized(a: &[f64]) -> Option<Vec<f64>> {
    let mass = sum(a);
    if mass <= 0.0 {
        return None;
    }
    Some(scale(a, 1.0 / mass))
}

/// Index of the maximum entry (first occurrence), or `None` for empty input.
#[must_use]
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Restriction of a vector to an index set: `out[k] = a[idx[k]]`.
///
/// # Panics
///
/// Panics if any index is out of bounds.
#[must_use]
pub fn gather(a: &[f64], idx: &[usize]) -> Vec<f64> {
    idx.iter().map(|&i| a[i]).collect()
}

/// Scatters `values` into a zero vector of length `len` at positions `idx`.
///
/// # Panics
///
/// Panics if `idx.len() != values.len()` or any index is out of bounds.
pub fn scatter(len: usize, idx: &[usize], values: &[f64]) -> Vec<f64> {
    assert_eq!(idx.len(), values.len(), "scatter length mismatch");
    let mut out = vec![0.0; len];
    for (&i, &v) in idx.iter().zip(values.iter()) {
        out[i] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm_l1(&[-3.0, 2.0]), 5.0);
        assert_eq!(sum(&[1.0, -1.0, 4.0]), 4.0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], 2.0), vec![2.0, 4.0]);
    }

    #[test]
    fn distribution_checks() {
        assert!(is_distribution(&[0.25, 0.75], 1e-12));
        assert!(!is_distribution(&[0.5, 0.6], 1e-12));
        assert!(!is_distribution(&[1.5, -0.5], 1e-12));
        assert_eq!(normalized(&[2.0, 2.0]), Some(vec![0.5, 0.5]));
        assert_eq!(normalized(&[0.0, 0.0]), None);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = [10.0, 20.0, 30.0, 40.0];
        let idx = [3, 1];
        let g = gather(&a, &idx);
        assert_eq!(g, vec![40.0, 20.0]);
        let s = scatter(4, &idx, &g);
        assert_eq!(s, vec![0.0, 20.0, 0.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
