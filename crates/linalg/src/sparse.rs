//! Compressed sparse row (CSR) matrices.
//!
//! The DSN'11 overlay-level computation iterates a distribution through the
//! matrix `T/n + (1 − 1/n) I` for up to 10⁵ steps. The transient block `T`
//! of the cluster chain is sparse (each state reaches a handful of
//! successors), so a CSR representation makes the iteration linear in the
//! number of non-zeros.

use std::collections::BTreeMap;

use crate::{LinalgError, Matrix};

/// A compressed sparse row matrix over `f64`.
///
/// # Example
///
/// ```
/// use pollux_linalg::sparse::CsrMatrix;
///
/// # fn main() -> Result<(), pollux_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 3.0)])?;
/// assert_eq!(m.vec_mul(&[1.0, 1.0]), vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values`; length `rows + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when a triplet lies outside
    /// the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        let mut per_row: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); rows];
        for &(i, j, v) in triplets {
            if i >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: i,
                    bound: rows,
                });
            }
            if j >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: j,
                    bound: cols,
                });
            }
            *per_row[i].entry(j).or_insert(0.0) += v;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &per_row {
            for (&j, &v) in row {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping entries with absolute value at or
    /// below `drop_tol`.
    pub fn from_dense(dense: &Matrix, drop_tol: f64) -> Self {
        let mut triplets = Vec::new();
        for i in 0..dense.rows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > drop_tol {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
            .expect("dense shape is consistent by construction")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of row `i` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[idx] * x[self.col_idx[idx]];
            }
            *out_i = acc;
        }
        out
    }

    /// Vector–matrix product `x A` (row vector times matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.col_idx[idx]] += xi * self.values[idx];
            }
        }
        out
    }

    /// In-place version of [`CsrMatrix::vec_mul`] writing into `out`.
    ///
    /// This avoids per-step allocation in long iterations; `out` is fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn vec_mul_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul_into");
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.col_idx[idx]] += xi * self.values[idx];
            }
        }
    }

    /// Densifies the matrix (for tests and small problems).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Returns `self * scale + identity * shift` as a new CSR matrix,
    /// assuming `self` is square.
    ///
    /// This is the kernel shape of the DSN'11 Theorem 2 matrix
    /// `T/n + (1 − 1/n) I`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if the matrix is not
    /// square.
    pub fn affine(&self, scale: f64, shift: f64) -> Result<CsrMatrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::InvalidDimensions(format!(
                "affine combination with identity requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() + self.rows);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                triplets.push((i, j, v * scale));
            }
            triplets.push((i, i, shift));
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn products_match_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -2.0, 3.0];
        assert_eq!(m.mul_vec(&x), d.mul_vec(&x));
        assert_eq!(m.vec_mul(&x), d.vec_mul(&x));
        let mut out = vec![0.0; 3];
        m.vec_mul_into(&x, &mut out);
        assert_eq!(out, d.vec_mul(&x));
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[0.0, 1.5], &[2.5, 0.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn drop_tolerance_applies() {
        let d = Matrix::from_rows(&[&[1e-12, 1.0], &[0.5, 1e-13]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 1e-10);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn affine_matches_formula() {
        let m = sample();
        let n = 4.0;
        let a = m.affine(1.0 / n, 1.0 - 1.0 / n).unwrap();
        let dense = m.to_dense();
        let expect = &dense.scale(1.0 / n) + &Matrix::identity(3).scale(1.0 - 1.0 / n);
        assert!(a.to_dense().approx_eq(&expect, 1e-15));
    }

    #[test]
    fn affine_requires_square() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(m.affine(1.0, 1.0).is_err());
    }

    #[test]
    fn row_entries_sorted_by_column() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 1, 2.0), (0, 2, 3.0)]).unwrap();
        let cols: Vec<usize> = m.row_entries(0).map(|(j, _)| j).collect();
        assert_eq!(cols, vec![1, 2, 3]);
    }
}
