//! Compressed sparse row (CSR) matrices.
//!
//! The DSN'11 overlay-level computation iterates a distribution through the
//! matrix `T/n + (1 − 1/n) I` for up to 10⁵ steps. The transient block `T`
//! of the cluster chain is sparse (each state reaches a handful of
//! successors), so a CSR representation makes the iteration linear in the
//! number of non-zeros.

use crate::{LinalgError, Matrix};

/// A compressed sparse row matrix over `f64`.
///
/// # Example
///
/// ```
/// use pollux_linalg::sparse::CsrMatrix;
///
/// # fn main() -> Result<(), pollux_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 3.0)])?;
/// assert_eq!(m.vec_mul(&[1.0, 1.0]), vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values`; length `rows + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed (in their order of appearance, so
    /// the result is bit-identical to a scatter-accumulate into a dense
    /// row); explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when a triplet lies outside
    /// the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        Self::from_triplet_vec(rows, cols, triplets.to_vec())
    }

    /// Consuming variant of [`CsrMatrix::from_triplets`]: sorts the triplet
    /// buffer in place, so building from a large transition enumeration
    /// allocates nothing beyond the CSR arrays themselves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when a triplet lies outside
    /// the declared shape.
    pub fn from_triplet_vec(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self, LinalgError> {
        for &(i, j, _) in &triplets {
            if i >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: i,
                    bound: rows,
                });
            }
            if j >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: j,
                    bound: cols,
                });
            }
        }
        // Stable sort keeps duplicates in appearance order, so the running
        // sum below adds them exactly as a dense `row[j] += v` loop would.
        triplets.sort_by_key(|&(i, j, _)| (i, j));
        let nnz_upper = triplets.len();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz_upper);
        let mut values = Vec::with_capacity(nnz_upper);
        row_ptr.push(0);
        let mut next_row = 0usize;
        let mut t = 0usize;
        while t < nnz_upper {
            let (i, j, v) = triplets[t];
            while next_row < i {
                row_ptr.push(col_idx.len());
                next_row += 1;
            }
            let mut acc = v;
            t += 1;
            while t < nnz_upper && triplets[t].0 == i && triplets[t].1 == j {
                acc += triplets[t].2;
                t += 1;
            }
            if acc != 0.0 {
                col_idx.push(j);
                values.push(acc);
            }
        }
        while next_row < rows {
            row_ptr.push(col_idx.len());
            next_row += 1;
        }
        debug_assert_eq!(row_ptr.len(), rows + 1);
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping entries with absolute value at or
    /// below `drop_tol`.
    #[must_use]
    pub fn from_dense(dense: &Matrix, drop_tol: f64) -> Self {
        let mut triplets = Vec::with_capacity(dense.rows() * 4);
        for i in 0..dense.rows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > drop_tol {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplet_vec(dense.rows(), dense.cols(), triplets)
            .expect("dense shape is consistent by construction")
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Exact bytes of the CSR backing storage (row pointers, column
    /// indices, values) — the memory-accounting figure for sparse
    /// chains.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.capacity() * std::mem::size_of::<usize>()
            + self.col_idx.capacity() * std::mem::size_of::<usize>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// The stored entry at `(i, j)`, or 0 when the coordinate holds no
    /// entry (columns are sorted within a row, so this is a binary
    /// search).
    ///
    /// # Panics
    ///
    /// Panics when the coordinate lies outside the matrix shape.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        match self.col_idx[span.clone()].binary_search(&j) {
            Ok(pos) => self.values[span.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Mutable access to the stored values of row `i` (columns are not
    /// exposed, so the sparsity pattern stays immutable).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_values_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Sum of each row's stored entries (in column order).
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| {
                self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
                    .iter()
                    .sum()
            })
            .collect()
    }

    /// The transpose as a new CSR matrix (a CSC view of `self`), built in
    /// O(nnz) by counting sort — no per-row maps, no re-sorting.
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.col_idx {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.rows {
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[idx];
                let at = cursor[j];
                cursor[j] += 1;
                col_idx[at] = i;
                values[at] = self.values[idx];
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Iterates over the stored entries of row `i` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// In-place version of [`CsrMatrix::mul_vec`] writing into `out`
    /// (fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec_into");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for (i, out_i) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[idx] * x[self.col_idx[idx]];
            }
            *out_i = acc;
        }
    }

    /// Fused multiply-add `out += A x` — the accumulation kernel of the
    /// batched iterative solves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_add(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_add");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for (i, out_i) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[idx] * x[self.col_idx[idx]];
            }
            *out_i += acc;
        }
    }

    /// Vector–matrix product `x A` (row vector times matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    #[must_use]
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.col_idx[idx]] += xi * self.values[idx];
            }
        }
        out
    }

    /// In-place version of [`CsrMatrix::vec_mul`] writing into `out`.
    ///
    /// This avoids per-step allocation in long iterations; `out` is fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn vec_mul_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul_into");
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.col_idx[idx]] += xi * self.values[idx];
            }
        }
    }

    /// Densifies the matrix (for tests and small problems).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Returns `self * scale + identity * shift` as a new CSR matrix,
    /// assuming `self` is square.
    ///
    /// This is the kernel shape of the DSN'11 Theorem 2 matrix
    /// `T/n + (1 − 1/n) I`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if the matrix is not
    /// square.
    pub fn affine(&self, scale: f64, shift: f64) -> Result<CsrMatrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::InvalidDimensions(format!(
                "affine combination with identity requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() + self.rows);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                triplets.push((i, j, v * scale));
            }
            triplets.push((i, i, shift));
        }
        CsrMatrix::from_triplet_vec(self.rows, self.cols, triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn products_match_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -2.0, 3.0];
        assert_eq!(m.mul_vec(&x), d.mul_vec(&x));
        assert_eq!(m.vec_mul(&x), d.vec_mul(&x));
        let mut out = vec![0.0; 3];
        m.vec_mul_into(&x, &mut out);
        assert_eq!(out, d.vec_mul(&x));
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[0.0, 1.5], &[2.5, 0.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn drop_tolerance_applies() {
        let d = Matrix::from_rows(&[&[1e-12, 1.0], &[0.5, 1e-13]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 1e-10);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn affine_matches_formula() {
        let m = sample();
        let n = 4.0;
        let a = m.affine(1.0 / n, 1.0 - 1.0 / n).unwrap();
        let dense = m.to_dense();
        let expect = &dense.scale(1.0 / n) + &Matrix::identity(3).scale(1.0 - 1.0 / n);
        assert!(a.to_dense().approx_eq(&expect, 1e-15));
    }

    #[test]
    fn affine_requires_square() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(m.affine(1.0, 1.0).is_err());
    }

    #[test]
    fn empty_rows_and_trailing_rows() {
        // Rows 0, 2 and 4 empty; row 4 is trailing.
        let m = CsrMatrix::from_triplets(5, 3, &[(1, 2, 1.0), (3, 0, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.row_entries(2).count(), 0);
        assert_eq!(m.row_entries(4).count(), 0);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![0.0, 1.0, 0.0, 2.0, 0.0]);
        // A fully empty matrix still has a consistent shape.
        let z = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0; 3]), vec![0.0; 3]);
    }

    #[test]
    fn duplicates_sum_in_appearance_order() {
        // The running sum must add duplicates left to right exactly as a
        // dense scatter-accumulate would (bit-identical, not just close).
        let vals = [0.1, 0.7, 1e-17, 0.2];
        let triplets: Vec<_> = vals.iter().map(|&v| (0usize, 0usize, v)).collect();
        let m = CsrMatrix::from_triplets(1, 1, &triplets).unwrap();
        let dense = vals.iter().fold(0.0, |acc, &v| acc + v);
        assert_eq!(m.get(0, 0), dense);
    }

    #[test]
    fn get_and_row_sums() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m =
            CsrMatrix::from_triplets(2, 4, &[(0, 3, 1.0), (0, 0, 2.0), (1, 1, 3.0), (1, 3, 4.0)])
                .unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        // Columns stay sorted within each transposed row.
        for i in 0..t.rows() {
            let cols: Vec<usize> = t.row_entries(i).map(|(j, _)| j).collect();
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn mul_add_accumulates() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut out = vec![10.0, 10.0, 10.0];
        m.mul_add(&x, &mut out);
        let want = m.mul_vec(&x);
        for (o, w) in out.iter().zip(want.iter()) {
            assert_eq!(*o, 10.0 + w);
        }
        let mut direct = vec![0.0; 3];
        m.mul_vec_into(&x, &mut direct);
        assert_eq!(direct, want);
    }

    #[test]
    fn row_entries_sorted_by_column() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 1, 2.0), (0, 2, 3.0)]).unwrap();
        let cols: Vec<usize> = m.row_entries(0).map(|(j, _)| j).collect();
        assert_eq!(cols, vec![1, 2, 3]);
    }
}
