//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`
//! headers), [`Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`any`], `collection::vec`, [`Just`] and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: cases are generated from a fixed per-test seed
//!   (derived from the test name), so failures reproduce exactly.
//! * **No shrinking**: a failing case panics with the generating seed and
//!   case index instead of a minimized input.

use rand::{rngs::StdRng, SeedableRng};

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic case generator handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Builds the runner for a named test: the seed is a stable FNV-1a
    /// hash of the name, so every test gets its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then runs the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f` (rejection sampling, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        use rand::RngExt;
        runner.rng().random_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        use rand::RngExt;
        runner.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                use rand::RngExt;
                runner.rng().random()
            }
        }
    )*};
}
impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The whole-domain strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};

    /// A length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            use rand::RngExt;
            let len = runner
                .rng()
                .random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// One-stop imports for test files (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Asserts a property-test condition (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its precondition does not hold.
///
/// Only valid inside [`proptest!`] bodies (expands to a `return` from the
/// per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($argpat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __runner = $crate::TestRunner::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($argpat,)*) = ( $( $crate::Strategy::new_value(&($strat), &mut __runner), )* );
                    let __one_case = move || { $body };
                    __one_case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..500).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..=1.0, (a, b) in (1u32..5, any::<bool>())) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!((1..5).contains(&a));
            let _ = b;
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn mapped_strategies_compose(e in even(), v in collection::vec(0i64..7, 2..9)) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0..7).contains(x)));
        }

        #[test]
        fn flat_map_threads_values((len, v) in (1usize..6).prop_flat_map(|n| (Just(n), collection::vec(any::<u8>(), n)))) {
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRunner::for_test("fixed-name");
        let mut b = TestRunner::for_test("fixed-name");
        let s = 0u64..1_000_000;
        let xs: Vec<u64> = (0..32).map(|_| s.new_value(&mut a)).collect();
        let ys: Vec<u64> = (0..32).map(|_| s.new_value(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
