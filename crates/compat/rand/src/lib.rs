//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds in environments without registry access, so the
//! subset of the `rand` 0.9 API the simulators rely on is provided here:
//! the [`Rng`] core trait (`next_u32` / `next_u64` / `fill_bytes`), the
//! [`RngExt`] convenience extension (`random`, `random_range`,
//! `random_bool`, `fill`), [`SeedableRng`] and a deterministic
//! [`rngs::StdRng`] backed by xoshiro256++ with SplitMix64 seeding.
//!
//! Everything is deterministic given a seed: there is deliberately no
//! `thread_rng` / OS-entropy constructor, because every consumer in this
//! workspace seeds explicitly for reproducibility.

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the core sampling interface.
///
/// Object-safety is preserved (all methods take `&mut self` and are
/// non-generic); the generic conveniences live on [`RngExt`].
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (the distribution behind [`RngExt::random`]).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open and inclusive ranges
/// (the distribution behind [`RngExt::random_range`]).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                lo + (uniform_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let u: $t = StandardSample::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding to the excluded endpoint.
                if v >= hi { hi.next_down().max(lo) } else { v }
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let u: $t = StandardSample::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Uniform draw from `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; the residual bias is
/// below `span / 2^64`, negligible for every range used here).
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Generic conveniences over any [`Rng`], mirroring `rand` 0.9's method
/// names (`random`, `random_range`, `random_bool`, `fill`).
pub trait RngExt: Rng {
    /// Draws a value uniformly over the whole domain of `T`
    /// (`[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
///
/// Small, fast, passes BigCrush, and — unlike the upstream `StdRng` —
/// guaranteed stable across releases of this workspace, which the
/// byte-identical sweep artefacts rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro; remap it.
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn float_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
            let w = rng.random_range(0u64..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn negative_and_zero_bounded_float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            let a = rng.random_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&a), "a = {a}");
            let b = rng.random_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&b), "b = {b}");
            let c = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&c), "c = {c}");
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_500..31_500).contains(&hits), "hits {hits}");
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        // 37 zero bytes in a row from a uniform source is ~2^-296.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trait_object_usable() {
        let mut rng = StdRng::seed_from_u64(19);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let _ = dyn_rng.next_u32();
        let mut buf = [0u8; 3];
        dyn_rng.fill_bytes(&mut buf);
    }

    #[test]
    fn from_seed_roundtrip_and_zero_guard() {
        let rng = StdRng::from_seed([0u8; 32]);
        assert_eq!(rng, StdRng::seed_from_u64(0));
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
