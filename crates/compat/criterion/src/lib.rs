//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the `pollux-bench` benches
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! `Throughput`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros — on top of a plain wall-clock timer.
//!
//! Compared to upstream there is no statistical outlier analysis and no
//! HTML report: each benchmark warms up briefly, runs a fixed number of
//! timed samples and prints `min / mean / max` per iteration. That is
//! enough to compare hot-path changes in this workspace without a
//! registry dependency.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, and used
/// only to pick the number of setup/routine pairs per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// A few routine calls per setup.
    SmallInput,
    /// One routine call per setup.
    LargeInput,
    /// One routine call per setup (alias used for huge inputs).
    PerIteration,
}

/// Throughput annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds the id `{function_name}/{parameter}`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max nanoseconds per iteration over the timed samples.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs for
        // at least ~1 ms so Instant overhead is negligible.
        let mut iters = 1u64;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let _ = per_iter_estimate;

        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = 0.0f64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let per_iter = start.elapsed().as_secs_f64() / iters as f64;
            min = min.min(per_iter);
            max = max.max(per_iter);
            total += per_iter;
        }
        self.result = Some((total / self.samples as f64, min, max));
    }

    /// Times `routine` on fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = 0.0f64;
        let mut timed = 0usize;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            let t = start.elapsed().as_secs_f64();
            min = min.min(t);
            max = max.max(t);
            total += t;
            timed += 1;
        }
        self.result = Some((total / timed.max(1) as f64, min, max));
    }
}

fn human_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// One finished measurement, retrievable via [`Criterion::results`] —
/// an extension over upstream criterion that lets harnesses serialize
/// timings (e.g. into the repository's `BENCH_*.json` trajectory) without
/// scraping stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/id` of the benchmark.
    pub id: String,
    /// Mean seconds per iteration over the timed samples.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Finishes the group (printing is immediate; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, bencher: &Bencher) {
        match bencher.result {
            Some((mean, min, max)) => {
                let mut line = format!(
                    "{}/{}: [{} {} {}]",
                    self.name,
                    id,
                    human_time(min),
                    human_time(mean),
                    human_time(max)
                );
                if let Some(t) = self.throughput {
                    let per_sec = match t {
                        Throughput::Bytes(n) => {
                            format!("{:.1} MiB/s", n as f64 / mean / (1 << 20) as f64)
                        }
                        Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / mean),
                    };
                    line.push_str(&format!(" ({per_sec})"));
                }
                println!("{line}");
                self.criterion.results.push(BenchResult {
                    id: format!("{}/{}", self.name, id),
                    mean_s: mean,
                    min_s: min,
                    max_s: max,
                });
            }
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// All measurements taken so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Drains the collected measurements.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.throughput(Throughput::Bytes(128));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 128],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn results_are_collected() {
        let mut c = Criterion::default();
        c.bench_function("collected", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.bench_function("fast", |b| b.iter(|| 2u64 * 2));
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "collected/");
        assert_eq!(results[1].id, "grouped/fast");
        for r in &results {
            assert!(r.min_s <= r.mean_s && r.mean_s <= r.max_s);
            assert!(r.mean_s > 0.0);
        }
        assert!(c.results().is_empty());
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("digest", 64).to_string(), "digest/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
