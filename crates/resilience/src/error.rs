//! The failure taxonomy: what went wrong in one unit of work, and
//! whether re-running it could possibly help.

use std::error::Error;
use std::fmt;

/// Why one unit of work (a sweep cell) failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FailureKind {
    /// The unit panicked; carries the panic message. Transient: a panic
    /// may be injected (fault harness) or environmental, and the retry
    /// contract guarantees a successful re-run is byte-identical.
    Panic(String),
    /// An iterative solver exhausted its budget
    /// (`LinalgError::NoConvergence` or an error wrapping it).
    /// Transient by the ISSUE's contract: the retry ladder may re-run
    /// under degraded settings that converge.
    NoConvergence(String),
    /// The memory-budget pre-flight rejected the unit: its predicted
    /// footprint exceeds the configured budget even after shedding
    /// every sheddable shard.
    MemoryBudget {
        /// Predicted footprint in bytes.
        needed_bytes: u64,
        /// The configured budget in bytes.
        budget_bytes: u64,
    },
    /// A non-transient evaluation error (invalid grid, singular system,
    /// IO failure, …). Retrying a deterministic evaluation of the same
    /// `(config, seed)` would fail identically, so the failure surfaces
    /// immediately.
    Fatal(String),
}

impl FailureKind {
    /// `true` when the bounded-retry ladder should re-run the unit.
    ///
    /// Panics, solver non-convergence and memory-budget rejections are
    /// transient (the ladder may change *how* the unit runs — e.g. shed
    /// shards — but never its seed, so output bytes are invariant);
    /// everything else is fatal.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FailureKind::Panic(_)
                | FailureKind::NoConvergence(_)
                | FailureKind::MemoryBudget { .. }
        )
    }

    /// A short machine-readable tag (`panic`, `no_convergence`,
    /// `memory_budget`, `fatal`) for metrics sidecars and journals.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            FailureKind::Panic(_) => "panic",
            FailureKind::NoConvergence(_) => "no_convergence",
            FailureKind::MemoryBudget { .. } => "memory_budget",
            FailureKind::Fatal(_) => "fatal",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailureKind::NoConvergence(msg) => write!(f, "solver gave up: {msg}"),
            FailureKind::MemoryBudget {
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: needs {needed_bytes} B, budget {budget_bytes} B"
            ),
            FailureKind::Fatal(msg) => write!(f, "{msg}"),
        }
    }
}

/// One cell's structured failure record: which cell of which scenario
/// failed, with which seed, after how many attempts, and why. This is
/// what a resilient sweep surfaces instead of a second-hand panic — the
/// originating cell is always named.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// The owning scenario's name.
    pub scenario: String,
    /// The cell's index in the scenario's canonical expansion order.
    pub cell_index: usize,
    /// The cell's deterministic seed (replaying `(scenario, cell_index,
    /// seed)` reproduces the failure).
    pub seed: u64,
    /// Evaluation attempts made (1 = no retry).
    pub attempts: u32,
    /// The final attempt's failure.
    pub kind: FailureKind,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} of scenario '{}' (seed {:#x}) failed after {} attempt(s): {}",
            self.cell_index, self.scenario, self.seed, self.attempts, self.kind
        )
    }
}

impl Error for CellFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_the_taxonomy() {
        assert!(FailureKind::Panic("boom".into()).is_transient());
        assert!(FailureKind::NoConvergence("200k sweeps".into()).is_transient());
        assert!(FailureKind::MemoryBudget {
            needed_bytes: 2,
            budget_bytes: 1
        }
        .is_transient());
        assert!(!FailureKind::Fatal("singular".into()).is_transient());
    }

    #[test]
    fn display_names_the_originating_cell() {
        let failure = CellFailure {
            scenario: "duel_matrix".into(),
            cell_index: 17,
            seed: 0xD51,
            attempts: 3,
            kind: FailureKind::Panic("index out of bounds".into()),
        };
        let msg = failure.to_string();
        assert!(msg.contains("cell 17"));
        assert!(msg.contains("duel_matrix"));
        assert!(msg.contains("3 attempt(s)"));
        assert!(msg.contains("index out of bounds"));
        assert_eq!(failure.kind.tag(), "panic");
    }
}
