//! Memory-budget pre-flight: admit a unit's *predicted* footprint
//! against an explicit budget before anything is allocated.
//!
//! Large DES cells know their footprint in advance (`des_memory_audit`
//! sums every table from the run parameters), so running out of memory
//! is a planning failure, not fate. The pre-flight turns OOM death into
//! a choice made up front: run as planned, degrade along an
//! output-invariant ladder (shedding DES shards never changes output
//! bytes — contiguous shards partition the same tables), or refuse with
//! a structured [`FailureKind::MemoryBudget`] naming both numbers.

use crate::FailureKind;

/// Environment variable consulted by [`MemoryBudget::from_env`].
pub const BUDGET_ENV: &str = "POLLUX_MEM_BUDGET_BYTES";

/// A byte budget that predicted footprints are admitted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    budget_bytes: Option<u64>,
}

impl MemoryBudget {
    /// No budget: every footprint is admitted (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        MemoryBudget { budget_bytes: None }
    }

    /// A hard budget of `budget_bytes`.
    #[must_use]
    pub fn bytes(budget_bytes: u64) -> Self {
        MemoryBudget {
            budget_bytes: Some(budget_bytes),
        }
    }

    /// Reads `POLLUX_MEM_BUDGET_BYTES`: unset or empty means unlimited,
    /// otherwise the value must parse as bytes (decimal `u64`).
    ///
    /// # Errors
    ///
    /// A human-readable message when the variable is set but not a
    /// number — a misconfigured budget must not silently become
    /// "unlimited".
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(BUDGET_ENV) {
            Err(_) => Ok(MemoryBudget::unlimited()),
            Ok(raw) if raw.trim().is_empty() => Ok(MemoryBudget::unlimited()),
            Ok(raw) => raw
                .trim()
                .parse::<u64>()
                .map(MemoryBudget::bytes)
                .map_err(|e| format!("{BUDGET_ENV}={raw:?} is not a byte count: {e}")),
        }
    }

    /// The configured limit, if any.
    #[must_use]
    pub fn limit_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Admits or rejects a predicted footprint.
    ///
    /// # Errors
    ///
    /// [`FailureKind::MemoryBudget`] when `needed_bytes` exceeds the
    /// budget.
    pub fn admit(&self, needed_bytes: u64) -> Result<(), FailureKind> {
        match self.budget_bytes {
            Some(budget_bytes) if needed_bytes > budget_bytes => Err(FailureKind::MemoryBudget {
                needed_bytes,
                budget_bytes,
            }),
            _ => Ok(()),
        }
    }

    /// Walks a degradation ladder: returns the first candidate whose
    /// predicted footprint fits the budget. Candidates are tried in the
    /// caller's order, which should go from most to least preferred
    /// (e.g. requested shard count down to one shard).
    ///
    /// # Errors
    ///
    /// [`FailureKind::MemoryBudget`] carrying the *smallest* footprint
    /// on the ladder when nothing fits — the number that tells the
    /// operator what budget would have been enough.
    pub fn admit_degrading<C>(
        &self,
        candidates: impl IntoIterator<Item = (C, u64)>,
    ) -> Result<C, FailureKind> {
        let mut smallest: Option<u64> = None;
        for (candidate, needed_bytes) in candidates {
            if self.admit(needed_bytes).is_ok() {
                return Ok(candidate);
            }
            smallest = Some(smallest.map_or(needed_bytes, |s| s.min(needed_bytes)));
        }
        Err(FailureKind::MemoryBudget {
            needed_bytes: smallest.unwrap_or(0),
            budget_bytes: self.budget_bytes.unwrap_or(0),
        })
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        assert_eq!(MemoryBudget::unlimited().admit(u64::MAX), Ok(()));
        assert_eq!(MemoryBudget::default().limit_bytes(), None);
    }

    #[test]
    fn bounded_budget_rejects_with_both_numbers() {
        let budget = MemoryBudget::bytes(1 << 20);
        assert_eq!(budget.admit(1 << 20), Ok(()));
        assert_eq!(
            budget.admit((1 << 20) + 1),
            Err(FailureKind::MemoryBudget {
                needed_bytes: (1 << 20) + 1,
                budget_bytes: 1 << 20,
            })
        );
    }

    #[test]
    fn degradation_ladder_picks_first_fit() {
        let budget = MemoryBudget::bytes(100);
        let picked = budget
            .admit_degrading([(8u32, 250u64), (4, 120), (2, 90), (1, 60)])
            .unwrap();
        assert_eq!(picked, 2);
    }

    #[test]
    fn exhausted_ladder_reports_smallest_footprint() {
        let budget = MemoryBudget::bytes(10);
        let err = budget
            .admit_degrading([(8u32, 250u64), (1, 60)])
            .unwrap_err();
        assert_eq!(
            err,
            FailureKind::MemoryBudget {
                needed_bytes: 60,
                budget_bytes: 10,
            }
        );
    }

    #[test]
    fn env_parsing_is_loud_about_garbage() {
        // from_env reads the real environment; only exercise the parse
        // paths that don't require mutating process-global state.
        assert!(MemoryBudget::from_env().is_ok() || MemoryBudget::from_env().is_err());
        let err = "12MB"
            .trim()
            .parse::<u64>()
            .map(MemoryBudget::bytes)
            .map_err(|e| format!("{BUDGET_ENV}=\"12MB\" is not a byte count: {e}"))
            .unwrap_err();
        assert!(err.contains(BUDGET_ENV));
    }
}
