//! Panic isolation: run a unit of work under `catch_unwind` and turn a
//! panic into a structured failure instead of a poisoned mutex.
//!
//! The pre-resilience sweep runner died collectively: one panicking
//! worker poisoned the shared job-queue mutex, every other worker then
//! panicked on `lock().expect(..)`, and the scope re-raised a
//! second-hand panic that never named the failing cell. Catching at the
//! unit boundary keeps every other unit running and yields a
//! [`FailureKind::Panic`] carrying the original message.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::FailureKind;

/// Runs `f`, converting a panic into [`FailureKind::Panic`] with the
/// panic's message (`&str` / `String` payloads are preserved verbatim;
/// anything else is labelled by type erasure).
///
/// The `AssertUnwindSafe` is sound for the sweep's use: a unit either
/// completes and returns owned rows, or its partial state is dropped
/// wholesale and the unit re-runs from its seed — no shared structure
/// observes the interrupted state. The default panic hook still prints
/// a backtrace to stderr; artefact bytes are unaffected (stderr only).
///
/// # Errors
///
/// [`FailureKind::Panic`] when `f` panicked.
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, FailureKind> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        FailureKind::Panic(msg)
    })
}

/// Runs `f` with the default panic hook silenced, so deliberate panics
/// (fault injection, negative tests) don't spam stderr with backtraces.
///
/// Takes and restores the hook around `f`; intended for test harnesses,
/// not the hot path (the hook is process-global, so concurrent
/// *unexpected* panics elsewhere are silenced too while `f` runs).
///
/// # Errors
///
/// As [`catch_panic`].
pub fn catch_panic_silent<T>(f: impl FnOnce() -> T) -> Result<T, FailureKind> {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_panic(f);
    std::panic::set_hook(hook);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through() {
        assert_eq!(catch_panic(|| 41 + 1), Ok(42));
    }

    #[test]
    fn str_and_string_payloads_are_preserved() {
        let e = catch_panic_silent(|| -> u32 { panic!("exact message") }).unwrap_err();
        assert_eq!(e, FailureKind::Panic("exact message".into()));
        let e = catch_panic_silent(|| -> u32 { panic!("formatted {}", 7) }).unwrap_err();
        assert_eq!(e, FailureKind::Panic("formatted 7".into()));
    }

    #[test]
    fn expect_style_panics_carry_their_message() {
        #[allow(clippy::unnecessary_literal_unwrap)]
        let e = catch_panic_silent(|| {
            // Deliberately the `Option::expect` shape the pre-resilience
            // runner died on, so the message round-trip is the one that
            // matters in practice.
            let v: Option<u32> = None;
            v.expect("every job slot was filled")
        })
        .unwrap_err();
        match e {
            FailureKind::Panic(msg) => assert!(msg.contains("every job slot was filled")),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn non_string_payloads_do_not_crash_the_guard() {
        let e = catch_panic_silent(|| std::panic::panic_any(1234usize)).unwrap_err();
        assert_eq!(e, FailureKind::Panic("non-string panic payload".into()));
    }
}
