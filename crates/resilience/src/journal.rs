//! The crash-safe completion journal: append-only JSONL with per-line
//! commit semantics, content hashing, and loud corruption failures.
//!
//! A resilient sweep appends one line per *completed* unit of work
//! (cell key + seed + FNV-64 content hash + the unit's encoded output
//! payload). The line is flushed and synced before the unit counts as
//! committed, so a crash — even `SIGKILL` — loses at most the line
//! being appended. On resume, replay tolerates exactly that one
//! incomplete tail line (no trailing newline ⇒ the append never
//! committed ⇒ the unit simply re-runs); every *other* malformation —
//! a truncated line in the middle, malformed JSON, a payload whose
//! hash does not match — is corruption and fails loudly with the file
//! and line number named. Silent partial resume is the one behaviour
//! this module must never exhibit.
//!
//! Whole-file artefacts (final TSV/JSON reports) go through
//! [`atomic_write`] instead: write to a sibling temp file, sync, then
//! rename over the target, so readers never observe a half-written
//! artefact.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Stable FNV-1a 64-bit hash (the workspace's standard content hash —
/// the same scheme the sweep runner uses for scenario-name seeding).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Journal failures: IO, a bad header, or corruption (always naming the
/// file, and the line for corruption).
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem failure on `path`.
    Io {
        /// The journal file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The header line is missing, malformed, or from an incompatible
    /// journal version.
    Header {
        /// The journal file involved.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// A committed line (i.e. one terminated by a newline) is malformed
    /// or its payload hash does not match — the journal is corrupt and
    /// must not be silently resumed from.
    Corrupt {
        /// The journal file involved.
        path: PathBuf,
        /// 1-based line number of the corrupt line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::Header { path, reason } => {
                write!(f, "journal {}: bad header: {reason}", path.display())
            }
            JournalError::Corrupt { path, line, reason } => write!(
                f,
                "journal {} is corrupt at line {line}: {reason} \
                 (refusing to resume; delete the file to restart from scratch)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The journal's first line: format version plus the run configuration
/// a resume must match (resuming under a different master seed would
/// silently mix incompatible sample paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Journal format version (currently 1).
    pub version: u64,
    /// The sweep's master seed.
    pub master_seed: u64,
    /// Free-form run label (binary name, scenario set, …).
    pub label: String,
}

impl JournalHeader {
    /// A version-1 header.
    #[must_use]
    pub fn new(master_seed: u64, label: &str) -> Self {
        JournalHeader {
            version: 1,
            master_seed,
            label: label.to_string(),
        }
    }

    fn to_line(&self) -> String {
        format!(
            "{{\"pollux_journal\":{},\"master_seed\":{},\"label\":{}}}",
            self.version,
            self.master_seed,
            quote(&self.label)
        )
    }

    fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_object(line)?;
        Ok(JournalHeader {
            version: take_u64(&fields, "pollux_journal")?,
            master_seed: take_u64(&fields, "master_seed")?,
            label: take_str(&fields, "label")?,
        })
    }
}

/// One committed unit of work: its key (scenario, cell index, seed), a
/// hash of the output-schema columns, the FNV-64 hash of the payload,
/// and the payload itself (the unit's encoded output bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Owning scenario name.
    pub scenario: String,
    /// Cell index in the scenario's canonical expansion order.
    pub cell_index: u64,
    /// The cell's deterministic seed (resume re-derives it and refuses
    /// entries that disagree — they belong to a different run config).
    pub seed: u64,
    /// FNV-64 of the scenario's output column names, guarding against
    /// resuming across a schema change.
    pub columns_hash: u64,
    /// FNV-64 of `payload`.
    pub hash: u64,
    /// The unit's encoded output (opaque to the journal).
    pub payload: String,
}

impl JournalEntry {
    /// Builds an entry, computing the payload hash.
    #[must_use]
    pub fn new(
        scenario: &str,
        cell_index: u64,
        seed: u64,
        columns_hash: u64,
        payload: String,
    ) -> Self {
        let hash = fnv1a64(payload.as_bytes());
        JournalEntry {
            scenario: scenario.to_string(),
            cell_index,
            seed,
            columns_hash,
            hash,
            payload,
        }
    }

    fn to_line(&self) -> String {
        format!(
            "{{\"scenario\":{},\"cell\":{},\"seed\":{},\"columns\":{},\"hash\":{},\"payload\":{}}}",
            quote(&self.scenario),
            self.cell_index,
            self.seed,
            self.columns_hash,
            self.hash,
            quote(&self.payload)
        )
    }

    fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_object(line)?;
        let entry = JournalEntry {
            scenario: take_str(&fields, "scenario")?,
            cell_index: take_u64(&fields, "cell")?,
            seed: take_u64(&fields, "seed")?,
            columns_hash: take_u64(&fields, "columns")?,
            hash: take_u64(&fields, "hash")?,
            payload: take_str(&fields, "payload")?,
        };
        let actual = fnv1a64(entry.payload.as_bytes());
        if actual != entry.hash {
            return Err(format!(
                "payload hash mismatch (recorded {:#x}, actual {:#x})",
                entry.hash, actual
            ));
        }
        Ok(entry)
    }
}

/// The result of replaying a journal file.
#[derive(Debug)]
pub struct JournalReplay {
    /// The parsed header.
    pub header: JournalHeader,
    /// Every committed (newline-terminated, hash-verified) entry.
    pub entries: Vec<JournalEntry>,
    /// `true` when the file ended in a partial line — the signature of
    /// a crash mid-append. The partial unit simply re-runs.
    pub dropped_partial_tail: bool,
}

/// An open, append-mode completion journal.
///
/// Created fresh with [`Journal::create`] (writes the header) or opened
/// for continuation with [`Journal::open_append`] after a successful
/// [`Journal::replay`].
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl Journal {
    /// Creates (truncating) the journal at `path` and commits the header
    /// line.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, JournalError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        }
        let file = File::create(path).map_err(|source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        };
        journal.commit_line(&header.to_line())?;
        Ok(journal)
    }

    /// Opens an existing journal for appending (validate it first with
    /// [`Journal::replay`]). If the file ends in a partial line from a
    /// crash mid-append, the tail is truncated away so the next append
    /// starts on a clean line boundary.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn open_append(path: &Path) -> Result<Self, JournalError> {
        let io_err = |source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        let bytes = std::fs::read(path).map_err(io_err)?;
        let committed = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last_newline) => last_newline + 1,
            None => 0,
        };
        let file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
        file.set_len(committed as u64).map_err(io_err)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// Appends and durably commits one entry (flush + `sync_data`): when
    /// this returns `Ok`, the entry survives `SIGKILL`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        self.commit_line(&entry.to_line())
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn commit_line(&mut self, line: &str) -> Result<(), JournalError> {
        let io_err = |source| JournalError::Io {
            path: self.path.clone(),
            source,
        };
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        self.writer.get_ref().sync_data().map_err(io_err)
    }

    /// Replays the journal at `path`: parses the header, verifies every
    /// committed line's structure and payload hash, and drops at most
    /// one partial tail line.
    ///
    /// # Errors
    ///
    /// * [`JournalError::Io`] — the file cannot be read.
    /// * [`JournalError::Header`] — the header line is missing/invalid.
    /// * [`JournalError::Corrupt`] — a committed line is malformed or
    ///   fails hash verification (file and line named; never silently
    ///   skipped).
    pub fn replay(path: &Path) -> Result<JournalReplay, JournalError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        let text = String::from_utf8(bytes).map_err(|e| JournalError::Header {
            path: path.to_path_buf(),
            reason: format!("not UTF-8: {e}"),
        })?;

        let dropped_partial_tail = !text.is_empty() && !text.ends_with('\n');
        let mut lines: Vec<&str> = text.split('\n').collect();
        // split leaves either a trailing "" (committed final newline) or
        // the partial tail; drop it either way.
        lines.pop();

        let mut it = lines.into_iter().enumerate();
        let header = match it.next() {
            None => {
                return Err(JournalError::Header {
                    path: path.to_path_buf(),
                    reason: "empty journal (no header line)".into(),
                })
            }
            Some((_, line)) => {
                JournalHeader::parse(line).map_err(|reason| JournalError::Header {
                    path: path.to_path_buf(),
                    reason,
                })?
            }
        };
        if header.version != 1 {
            return Err(JournalError::Header {
                path: path.to_path_buf(),
                reason: format!("unsupported journal version {}", header.version),
            });
        }

        let mut entries = Vec::new();
        for (i, line) in it {
            let entry = JournalEntry::parse(line).map_err(|reason| JournalError::Corrupt {
                path: path.to_path_buf(),
                line: i + 1,
                reason,
            })?;
            entries.push(entry);
        }
        Ok(JournalReplay {
            header,
            entries,
            dropped_partial_tail,
        })
    }
}

/// Atomically replaces `path` with `bytes`: write a sibling temp file,
/// sync it, rename over the target. Readers observe either the old or
/// the new content, never a torn write — the contract final artefacts
/// need under kill/resume.
///
/// # Errors
///
/// Propagates filesystem failures (the temp file is cleaned up on
/// rename failure).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(parent) = parent {
        std::fs::create_dir_all(parent)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------
// Minimal flat-object JSON line codec (keys → u64 or string). The
// journal's lines are machine-written with exactly these shapes; the
// parser rejects anything else rather than guessing.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Field {
    U64(u64),
    Str(String),
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse_object(line: &str) -> Result<Vec<(String, Field)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key string, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key '{key}'"));
        }
        let value = match chars.peek() {
            Some('"') => Field::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() {
                        digits.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Field::U64(
                    digits
                        .parse()
                        .map_err(|e| format!("bad number for '{key}': {e}"))?,
                )
            }
            other => return Err(format!("unsupported value for '{key}': {other:?}")),
        };
        fields.push((key, value));
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    if chars.next().is_some() {
        return Err("trailing bytes after object".into());
    }
    Ok(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let cp = u32::from_str_radix(&code, 16)
                        .map_err(|_| format!("bad \\u escape '{code}'"))?;
                    out.push(char::from_u32(cp).ok_or_else(|| format!("bad code point {cp}"))?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn take_u64(fields: &[(String, Field)], key: &str) -> Result<u64, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Field::U64(v))) => Ok(*v),
        Some((_, Field::Str(_))) => Err(format!("field '{key}' is not a number")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn take_str(fields: &[(String, Field)], key: &str) -> Result<String, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Field::Str(v))) => Ok(v.clone()),
        Some((_, Field::U64(_))) => Err(format!("field '{key}' is not a string")),
        None => Err(format!("missing field '{key}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pollux-journal-{}-{name}.jsonl",
            std::process::id()
        ))
    }

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::new("fig3", 0, 11, 42, "u1,f3ff0000000000000".into()),
            JournalEntry::new(
                "fig3",
                2,
                13,
                42,
                "payload with \"quotes\"\nand newline".into(),
            ),
            JournalEntry::new("table1", 0, 17, 99, String::new()),
        ]
    }

    #[test]
    fn round_trips_header_and_entries() {
        let path = temp_path("roundtrip");
        let header = JournalHeader::new(0xD51_2011, "reproduce_all");
        let mut journal = Journal::create(&path, &header).unwrap();
        for e in sample_entries() {
            journal.append(&e).unwrap();
        }
        drop(journal);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.header, header);
        assert_eq!(replay.entries, sample_entries());
        assert!(!replay.dropped_partial_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_tail_line_is_dropped_not_fatal() {
        let path = temp_path("partial");
        let header = JournalHeader::new(1, "x");
        let mut journal = Journal::create(&path, &header).unwrap();
        let entries = sample_entries();
        for e in &entries {
            journal.append(e).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-append: chop the file mid-way through the
        // last line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.entries, entries[..2].to_vec());
        assert!(replay.dropped_partial_tail);
        // Re-opening for append truncates the partial tail, so the next
        // committed entry lands on a clean line boundary.
        let mut journal = Journal::open_append(&path).unwrap();
        journal.append(&entries[2]).unwrap();
        drop(journal);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[2], entries[2]);
        assert!(!replay.dropped_partial_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_truncation_fails_loudly_naming_file_and_line() {
        let path = temp_path("midfile");
        let mut journal = Journal::create(&path, &JournalHeader::new(1, "x")).unwrap();
        for e in sample_entries() {
            journal.append(&e).unwrap();
        }
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let chopped = &lines[1][..lines[1].len() / 2];
        lines[1] = chopped;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = Journal::replay(&path).unwrap_err();
        match &err {
            JournalError::Corrupt { path: p, line, .. } => {
                assert_eq!(p, &path);
                // Header is line 1; the chopped first entry is line 2.
                assert_eq!(*line, 2);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(err.to_string().contains("pollux-journal"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hash_mismatch_fails_loudly() {
        let path = temp_path("badhash");
        let mut journal = Journal::create(&path, &JournalHeader::new(1, "x")).unwrap();
        journal
            .append(&JournalEntry::new("s", 0, 1, 2, "row-bytes-v1".into()))
            .unwrap();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("row-bytes-v1", "row-bytes-v2");
        std::fs::write(&path, tampered).unwrap();
        let err = Journal::replay(&path).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 2, .. }));
        assert!(err.to_string().contains("hash mismatch"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_garbage_header_is_a_header_error() {
        let path = temp_path("header");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            Journal::replay(&path),
            Err(JournalError::Header { .. })
        ));
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(matches!(
            Journal::replay(&path),
            Err(JournalError::Header { .. })
        ));
        std::fs::write(
            &path,
            "{\"pollux_journal\":9,\"master_seed\":1,\"label\":\"x\"}\n",
        )
        .unwrap();
        let err = Journal::replay(&path).unwrap_err();
        assert!(err.to_string().contains("version 9"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_content() {
        let path = temp_path("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        // No temp droppings left behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_str().unwrap().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().to_string();
                n.starts_with(&stem) && n != stem
            })
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn escaping_round_trips_awkward_strings() {
        let awkward = "tabs\tnewlines\nquotes\"backslash\\ctrl\u{1}";
        let entry = JournalEntry::new(awkward, 1, 2, 3, awkward.to_string());
        let parsed = JournalEntry::parse(&entry.to_line()).unwrap();
        assert_eq!(parsed, entry);
    }
}
