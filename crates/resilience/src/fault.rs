//! Fault injection: a declarative plan of deliberate failures, used by
//! the test suite and CI to prove every recovery path actually fires.
//!
//! A [`FaultPlan`] says *which* global cell slots panic on *which*
//! attempt, and after how many journaled completions the process should
//! simulate a kill. Plans flow through explicit configuration (the
//! sweep runner takes one by value — no process globals, so parallel
//! tests cannot interfere); the harness binaries additionally accept the
//! textual form via the `POLLUX_FAULT` environment variable so CI can
//! inject faults without a dedicated CLI surface:
//!
//! ```text
//! POLLUX_FAULT="panic-cell=3@1,panic-cell=7@1,exit-after=5"
//! ```
//!
//! * `panic-cell=SLOT@ATTEMPT` — the evaluation of global cell `SLOT`
//!   panics on attempt `ATTEMPT` (attempts are 1-based; `@1` fails the
//!   first run so deterministic retry recovers it, `@1` on every attempt
//!   up to the retry budget makes the cell surface as a failure).
//!   `panic-cell=SLOT` alone is shorthand for `SLOT@1`.
//! * `exit-after=N` — after `N` cells have been durably journaled, the
//!   process exits immediately (`exit(42)`), simulating `SIGKILL`
//!   between units; a subsequent `--resume` must complete the run
//!   byte-identically.

use std::fmt;

/// Exit code used by the simulated kill, distinct from real failure
/// codes (0 ok / 1 failure / 2 usage) so CI can assert the kill fired.
pub const SIMULATED_KILL_EXIT_CODE: i32 = 42;

/// Environment variable consulted by [`FaultPlan::from_env`].
pub const FAULT_ENV: &str = "POLLUX_FAULT";

/// A declarative fault-injection plan (empty by default: no faults).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(global cell slot, 1-based attempt)` pairs that panic.
    pub panic_cells: Vec<(usize, u32)>,
    /// Simulate a kill after this many journaled completions.
    pub exit_after_cells: Option<u64>,
}

impl FaultPlan {
    /// The empty plan — injects nothing.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panic_cells.is_empty() && self.exit_after_cells.is_none()
    }

    /// Should the evaluation of `slot` on `attempt` (1-based) panic?
    #[must_use]
    pub fn should_panic(&self, slot: usize, attempt: u32) -> bool {
        self.panic_cells
            .iter()
            .any(|&(s, a)| s == slot && a == attempt)
    }

    /// The simulated-kill threshold, if any.
    #[must_use]
    pub fn exit_after(&self) -> Option<u64> {
        self.exit_after_cells
    }

    /// Parses the textual plan format (see module docs). The empty
    /// string is the empty plan.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending directive — a typo
    /// in a fault plan must not silently inject nothing.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for directive in spec.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            let (key, value) = directive
                .split_once('=')
                .ok_or_else(|| format!("fault directive '{directive}' is missing '='"))?;
            match key {
                "panic-cell" => {
                    let (slot, attempt) = match value.split_once('@') {
                        Some((slot, attempt)) => (
                            parse_num::<usize>("panic-cell slot", slot)?,
                            parse_num::<u32>("panic-cell attempt", attempt)?,
                        ),
                        None => (parse_num::<usize>("panic-cell slot", value)?, 1),
                    };
                    if attempt == 0 {
                        return Err(format!(
                            "fault directive '{directive}': attempts are 1-based"
                        ));
                    }
                    plan.panic_cells.push((slot, attempt));
                }
                "exit-after" => {
                    plan.exit_after_cells = Some(parse_num::<u64>("exit-after count", value)?);
                }
                other => {
                    return Err(format!(
                        "unknown fault directive '{other}' \
                         (expected panic-cell=SLOT[@ATTEMPT] or exit-after=N)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Reads the plan from `POLLUX_FAULT` (unset/empty → empty plan).
    ///
    /// # Errors
    ///
    /// As [`FaultPlan::parse`].
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(FAULT_ENV) {
            Err(_) => Ok(FaultPlan::none()),
            Ok(raw) => FaultPlan::parse(&raw).map_err(|e| format!("{FAULT_ENV}: {e}")),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self
            .panic_cells
            .iter()
            .map(|(s, a)| format!("panic-cell={s}@{a}"))
            .collect();
        if let Some(n) = self.exit_after_cells {
            parts.push(format!("exit-after={n}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

fn parse_num<T: std::str::FromStr>(what: &str, raw: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    raw.trim()
        .parse()
        .map_err(|e| format!("{what} '{raw}' is not a number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn full_spec_round_trips_through_display() {
        let plan = FaultPlan::parse("panic-cell=3@1, panic-cell=7@2,exit-after=5").unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                panic_cells: vec![(3, 1), (7, 2)],
                exit_after_cells: Some(5),
            }
        );
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn bare_panic_cell_defaults_to_attempt_one() {
        let plan = FaultPlan::parse("panic-cell=9").unwrap();
        assert!(plan.should_panic(9, 1));
        assert!(!plan.should_panic(9, 2));
        assert!(!plan.should_panic(8, 1));
    }

    #[test]
    fn typos_fail_loudly() {
        assert!(FaultPlan::parse("panic-cel=3")
            .unwrap_err()
            .contains("panic-cel"));
        assert!(FaultPlan::parse("panic-cell=x")
            .unwrap_err()
            .contains("not a number"));
        assert!(FaultPlan::parse("panic-cell=3@0")
            .unwrap_err()
            .contains("1-based"));
        assert!(FaultPlan::parse("exit-after")
            .unwrap_err()
            .contains("missing '='"));
    }

    #[test]
    fn repeated_attempts_model_a_persistently_failing_cell() {
        let plan = FaultPlan::parse("panic-cell=4@1,panic-cell=4@2,panic-cell=4@3").unwrap();
        for attempt in 1..=3 {
            assert!(plan.should_panic(4, attempt));
        }
        assert!(!plan.should_panic(4, 4));
    }
}
