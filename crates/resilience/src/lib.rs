//! `pollux-resilience` — the crash-safe execution spine of the Pollux
//! reproduction.
//!
//! The paper's subject is how a large-scale dynamic system survives
//! adversarial perturbation; this crate is the analogue for our own
//! evaluation machinery. Long-running sweeps (multi-hour campaign
//! matrices, planet-scale DES ladders) must survive the faults that
//! real runs actually hit — a panicking cell, a solver that refuses to
//! converge, a run that outgrows memory, a process killed halfway
//! through — without losing completed work or perturbing a single
//! output byte. Four pillars:
//!
//! * **Panic isolation** ([`panic_guard`]) — a unit of work runs under
//!   `catch_unwind`; a panic becomes a structured [`FailureKind::Panic`]
//!   instead of poisoning shared state and cascading.
//! * **Deterministic bounded retry** ([`retry`]) — transient failures
//!   re-run the unit from its original seed. Evaluation is a pure
//!   function of `(config, seed)`, so a successful retry is
//!   *byte-identical* to a first-attempt success; retries can change
//!   whether output exists, never what it contains.
//! * **Crash-safe checkpoint/resume** ([`journal`]) — an append-only
//!   JSONL journal of completed units (key + FNV-64 content hash +
//!   payload). Each line commits one unit; a crash mid-append leaves at
//!   most one partial tail line, which replay discards. Any other
//!   corruption fails loudly, naming the file and line.
//! * **Memory-budget pre-flight** ([`memory`]) — predicted footprints
//!   are admitted against an explicit budget *before* allocation, so a
//!   run degrades (shedding DES shards, which never changes output
//!   bytes) or refuses with a structured error instead of OOM-dying.
//!
//! The [`fault`] module is the proof obligation: an injection plan
//! (worker panics at chosen cells/attempts, a simulated kill between
//! units) that the test suite and CI drive through every recovery path
//! to show each one actually fires.
//!
//! The crate is std-only and knows nothing about sweeps or solvers; the
//! `pollux-sweep` runner and the harness binaries wire it through the
//! execution machinery.

mod error;
pub mod fault;
pub mod journal;
pub mod memory;
pub mod panic_guard;
pub mod retry;

pub use error::{CellFailure, FailureKind};
pub use fault::FaultPlan;
pub use journal::{
    atomic_write, fnv1a64, Journal, JournalEntry, JournalError, JournalHeader, JournalReplay,
};
pub use memory::MemoryBudget;
pub use panic_guard::catch_panic;
pub use retry::{run_with_retry, RetryPolicy};
