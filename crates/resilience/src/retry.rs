//! Deterministic bounded retry.
//!
//! A unit of work in Pollux is a pure function of `(config, seed)`;
//! the retry ladder therefore re-runs a failed unit *from the same
//! seed*. The consequence is the central determinism guarantee of the
//! failure model (test-enforced end to end): a retry can change
//! **whether** output exists, never **what** it contains — a run that
//! recovers from injected faults is byte-identical to a fault-free run.

use crate::FailureKind;

/// How many times a transiently failing unit is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1); `1` means no retry.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// Two attempts: the original run plus one retry — enough to absorb
    /// a transient fault without masking a deterministic failure for
    /// long (a genuinely broken cell fails every attempt identically).
    fn default() -> Self {
        RetryPolicy { max_attempts: 2 }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts (clamped to ≥ 1).
    #[must_use]
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
        }
    }

    /// The no-retry policy (one attempt).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1 }
    }
}

/// Runs `attempt(n)` for `n = 1, 2, …` until it succeeds, fails
/// non-transiently, or the policy's attempt budget is spent. Returns the
/// result together with the number of attempts made.
///
/// The attempt index is passed through so callers can degrade *how* the
/// unit runs (fault plans key on it; the sweep runner sheds DES shards
/// between memory-rejected attempts) — but the unit's seed, and thus its
/// output bytes, must not depend on it.
///
/// # Errors
///
/// The last attempt's [`FailureKind`], with the attempt count.
pub fn run_with_retry<T>(
    policy: RetryPolicy,
    mut attempt: impl FnMut(u32) -> Result<T, FailureKind>,
) -> Result<(T, u32), (FailureKind, u32)> {
    let mut n = 0;
    loop {
        n += 1;
        match attempt(n) {
            Ok(value) => return Ok((value, n)),
            Err(kind) if kind.is_transient() && n < policy.max_attempts => continue,
            Err(kind) => return Err((kind, n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_success_is_one_attempt() {
        let r = run_with_retry(RetryPolicy::new(5), |_| Ok::<_, FailureKind>(7));
        assert_eq!(r, Ok((7, 1)));
    }

    #[test]
    fn transient_failures_retry_up_to_budget() {
        let r = run_with_retry(RetryPolicy::new(3), |n| {
            if n < 3 {
                Err(FailureKind::Panic(format!("attempt {n}")))
            } else {
                Ok(n)
            }
        });
        assert_eq!(r, Ok((3, 3)));
    }

    #[test]
    fn budget_exhaustion_surfaces_the_last_failure() {
        let r: Result<(u32, u32), _> = run_with_retry(RetryPolicy::new(2), |n| {
            Err(FailureKind::NoConvergence(format!("attempt {n}")))
        });
        assert_eq!(r, Err((FailureKind::NoConvergence("attempt 2".into()), 2)));
    }

    #[test]
    fn fatal_failures_never_retry() {
        let mut calls = 0;
        let r: Result<(u32, u32), _> = run_with_retry(RetryPolicy::new(10), |_| {
            calls += 1;
            Err(FailureKind::Fatal("singular".into()))
        });
        assert_eq!(calls, 1);
        assert_eq!(r, Err((FailureKind::Fatal("singular".into()), 1)));
    }

    #[test]
    fn policy_clamps_to_at_least_one_attempt() {
        assert_eq!(RetryPolicy::new(0).max_attempts, 1);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 2);
    }
}
