//! Round-based simulated Byzantine-tolerant agreement among core members.
//!
//! The paper assumes a Byzantine-tolerant consensus primitive for the
//! random choices of the maintenance and split procedures (Section IV) and
//! leans on the classical `n > 3f` bound [Lamport–Shostak–Pease]: with core
//! size `C` and at most `c = ⌊(C−1)/3⌋` faulty members, agreement on the
//! honest value is guaranteed; with more than `c` faulty members the
//! adversary can drive the outcome.
//!
//! This module simulates the *message pattern* of a PBFT-style single-shot
//! agreement (pre-prepare → prepare → commit) so that higher layers can
//! account for message complexity, while the *outcome* follows the
//! quorum-threshold semantics above — exactly the property the analytical
//! model uses.

use crate::Member;

/// Outcome of one simulated agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusOutcome<V> {
    /// The decided value.
    pub decided: V,
    /// `true` when the decision is the honest proposal (the run was not
    /// subverted).
    pub honest_outcome: bool,
    /// Number of protocol rounds simulated.
    pub rounds: usize,
    /// Total number of point-to-point messages the run would have sent.
    pub messages: usize,
}

/// Runs a single-shot agreement among `members` on `honest_value`, with the
/// colluding malicious members pushing `adversary_value` when they hold
/// more than the quorum threshold `c = ⌊(|members|−1)/3⌋`.
///
/// Message accounting follows the three all-to-all phases of PBFT-like
/// protocols: `1 broadcast + 2·n²` point-to-point messages for `n`
/// participants, one round per phase.
///
/// # Panics
///
/// Panics when `members` is empty.
pub fn agree<V: Clone>(
    members: &[Member],
    honest_value: V,
    adversary_value: Option<V>,
) -> ConsensusOutcome<V> {
    assert!(!members.is_empty(), "consensus needs at least one member");
    let n = members.len();
    let c = (n - 1) / 3;
    let faulty = members.iter().filter(|m| m.malicious).count();

    // Phase 1: leader pre-prepare (n messages), phases 2-3: prepare and
    // commit, all-to-all (n² each).
    let messages = n + 2 * n * n;
    let rounds = 3;

    // With at most c faults the 2f+1 quorum of honest prepares forces the
    // honest proposal; beyond c the colluders can equivocate and commit
    // their own value (if they care to).
    match adversary_value {
        Some(adv) if faulty > c => ConsensusOutcome {
            decided: adv,
            honest_outcome: false,
            rounds,
            messages,
        },
        _ => ConsensusOutcome {
            decided: honest_value,
            honest_outcome: true,
            rounds,
            messages,
        },
    }
}

/// Quorum size needed for a decision among `n` members: `n − ⌊(n−1)/3⌋`
/// (i.e. `2f + 1` when `n = 3f + 1`).
pub fn quorum_size(n: usize) -> usize {
    assert!(n > 0, "quorum of an empty set");
    n - (n - 1) / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, PeerId};

    fn members(n: usize, malicious: usize) -> Vec<Member> {
        (0..n)
            .map(|i| Member {
                peer: PeerId(i as u64),
                malicious: i < malicious,
                id: NodeId::from_data(&(i as u64).to_be_bytes()),
            })
            .collect()
    }

    #[test]
    fn honest_majority_decides_honest_value() {
        for f in 0..=2 {
            let out = agree(&members(7, f), "honest", Some("evil"));
            assert_eq!(out.decided, "honest", "f={f}");
            assert!(out.honest_outcome);
        }
    }

    #[test]
    fn quorum_of_malicious_subverts() {
        let out = agree(&members(7, 3), "honest", Some("evil"));
        assert_eq!(out.decided, "evil");
        assert!(!out.honest_outcome);
    }

    #[test]
    fn passive_adversary_cannot_subvert() {
        // Without a competing proposal the honest value stands even with
        // many faults (crash-like behaviour).
        let out = agree(&members(7, 5), "honest", None::<&str>);
        assert_eq!(out.decided, "honest");
        assert!(out.honest_outcome);
    }

    #[test]
    fn message_and_round_accounting() {
        let out = agree(&members(4, 0), 1u32, None);
        assert_eq!(out.rounds, 3);
        assert_eq!(out.messages, 4 + 2 * 16);
    }

    #[test]
    fn quorum_sizes_match_bft_bounds() {
        assert_eq!(quorum_size(1), 1);
        assert_eq!(quorum_size(4), 3); // f=1
        assert_eq!(quorum_size(7), 5); // f=2
        assert_eq!(quorum_size(10), 7); // f=3
    }

    #[test]
    fn threshold_is_exactly_one_third() {
        // n = 3f + 1 tolerates exactly f.
        for f in 1..5 {
            let n = 3 * f + 1;
            let ok = agree(&members(n, f), 0u8, Some(1));
            assert!(ok.honest_outcome, "n={n} f={f}");
            let bad = agree(&members(n, f + 1), 0u8, Some(1));
            assert!(!bad.honest_outcome, "n={n} f+1={}", f + 1);
        }
    }
}
