//! Greedy prefix routing over the cluster topology, with adversarial drops.
//!
//! The attacks the paper models (Section I) ultimately matter because
//! polluted clusters can drop or misroute traffic. This module walks the
//! greedy prefix route of [`crate::Overlay::next_hop`] and lets the caller
//! declare which clusters misbehave, plus a simple redundant-routing
//! variant in the spirit of Castro et al. (random first hop, then greedy)
//! to measure how much redundancy buys back.

use rand::RngExt;

use crate::{Cluster, Label, NodeId, Overlay, OverlayError};

/// Result of routing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteOutcome {
    /// `true` when the message reached the responsible cluster.
    pub delivered: bool,
    /// The sequence of cluster labels visited, source first.
    pub path: Vec<Label>,
    /// The label at which an adversarial cluster dropped the message.
    pub dropped_at: Option<Label>,
}

impl RouteOutcome {
    /// Number of hops taken (edges traversed).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Routes a message from the cluster labelled `from` to the cluster
/// responsible for `target`, dropping it at the first *intermediate or
/// final* cluster for which `drops` returns `true`. The source is assumed
/// to originate the message and never drops it.
///
/// # Errors
///
/// Returns [`OverlayError::Topology`] when `from` is not a cluster label.
pub fn route(
    overlay: &Overlay,
    from: &Label,
    target: &NodeId,
    drops: &dyn Fn(&Cluster) -> bool,
) -> Result<RouteOutcome, OverlayError> {
    let mut path = vec![from.clone()];
    let mut current = from.clone();
    // The cover invariant bounds genuine routes by the deepest label; use a
    // generous hard cap to convert bugs into loud failures.
    let max_hops = 8 + overlay.labels().iter().map(Label::len).max().unwrap_or(0);
    loop {
        match overlay.next_hop(&current, target)? {
            None => {
                return Ok(RouteOutcome {
                    delivered: true,
                    path,
                    dropped_at: None,
                });
            }
            Some(next) => {
                let cluster = overlay
                    .cluster(&next)
                    .expect("next_hop returns existing labels");
                path.push(next.clone());
                if drops(cluster) {
                    return Ok(RouteOutcome {
                        delivered: false,
                        path,
                        dropped_at: Some(next),
                    });
                }
                current = next;
            }
        }
        assert!(
            path.len() <= max_hops,
            "routing exceeded {max_hops} hops: loop suspected"
        );
    }
}

/// Redundant routing: the greedy route plus `redundancy − 1` detour routes
/// that take one uniformly random neighbour hop before continuing
/// greedily. Delivered when any copy arrives.
///
/// # Errors
///
/// Returns [`OverlayError::Topology`] when `from` is not a cluster label.
pub fn route_redundant<R: rand::Rng + ?Sized>(
    overlay: &Overlay,
    from: &Label,
    target: &NodeId,
    drops: &dyn Fn(&Cluster) -> bool,
    redundancy: usize,
    rng: &mut R,
) -> Result<bool, OverlayError> {
    if route(overlay, from, target, drops)?.delivered {
        return Ok(true);
    }
    for _ in 1..redundancy {
        let neighbors = overlay.neighbors(from);
        if neighbors.is_empty() {
            break;
        }
        let detour = &neighbors[rng.random_range(0..neighbors.len())];
        let detour_cluster = overlay.cluster(detour).expect("neighbor exists");
        if drops(detour_cluster) {
            continue;
        }
        if route(overlay, detour, target, drops)?.delivered {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Estimates the delivery rate over `attempts` random (source, target)
/// pairs, where targets are uniform hashed identifiers and sources are
/// uniform clusters.
///
/// # Panics
///
/// Panics if the overlay is empty or `attempts == 0`.
pub fn delivery_rate<R: rand::Rng + ?Sized>(
    overlay: &Overlay,
    attempts: usize,
    drops: &dyn Fn(&Cluster) -> bool,
    rng: &mut R,
) -> f64 {
    assert!(attempts > 0, "need at least one attempt");
    let labels = overlay.labels();
    assert!(!labels.is_empty(), "empty overlay");
    let mut delivered = 0usize;
    for i in 0..attempts {
        let from = &labels[rng.random_range(0..labels.len())];
        let target = NodeId::from_data(&(i as u64 ^ rng.random::<u64>()).to_be_bytes());
        if route(overlay, from, &target, drops)
            .expect("labels come from the overlay")
            .delivered
        {
            delivered += 1;
        }
    }
    delivered as f64 / attempts as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterParams, Member, PeerId};
    use rand::{rngs::StdRng, SeedableRng};

    fn params() -> ClusterParams {
        ClusterParams::new(2, 6).unwrap()
    }

    fn cluster_at(label: &str, base: u64, malicious_core: usize) -> Cluster {
        let label = Label::parse(label).unwrap();
        let core: Vec<Member> = (0..2)
            .map(|i| Member {
                peer: PeerId(base + i),
                malicious: (i as usize) < malicious_core,
                id: NodeId::from_data(&(base + i).to_be_bytes()),
            })
            .collect();
        let spare = vec![Member {
            peer: PeerId(base + 5),
            malicious: false,
            id: NodeId::from_data(&(base + 5).to_be_bytes()),
        }];
        Cluster::new(label, params(), core, spare).unwrap()
    }

    fn overlay(malicious_at_10: usize) -> Overlay {
        Overlay::bootstrap(
            params(),
            vec![
                cluster_at("00", 0, 0),
                cluster_at("01", 10, 0),
                cluster_at("10", 20, malicious_at_10),
                cluster_at("11", 30, 0),
            ],
        )
        .unwrap()
    }

    fn id_with_prefix(prefix: &str) -> NodeId {
        let want = Label::parse(prefix).unwrap();
        for i in 0..10_000u64 {
            let id = NodeId::from_data(&i.to_be_bytes());
            if want.is_prefix_of(&id) {
                return id;
            }
        }
        panic!("no id found with prefix {prefix}");
    }

    #[test]
    fn clean_overlay_delivers_everything() {
        let ov = overlay(0);
        let mut rng = StdRng::seed_from_u64(1);
        let rate = delivery_rate(&ov, 500, &|_| false, &mut rng);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn route_records_path() {
        let ov = overlay(0);
        let target = id_with_prefix("11");
        let out = route(&ov, &Label::parse("00").unwrap(), &target, &|_| false).unwrap();
        assert!(out.delivered);
        assert!(out.hops() >= 1 && out.hops() <= 2, "hops {}", out.hops());
        assert_eq!(out.path.first().unwrap().to_string(), "00");
        assert_eq!(out.path.last().unwrap().to_string(), "11");
    }

    #[test]
    fn local_delivery_takes_no_hops() {
        let ov = overlay(0);
        let target = id_with_prefix("00");
        let out = route(&ov, &Label::parse("00").unwrap(), &target, &|_| false).unwrap();
        assert!(out.delivered);
        assert_eq!(out.hops(), 0);
    }

    #[test]
    fn polluted_cluster_drops() {
        let ov = overlay(2); // "10" fully malicious core
        let drops = |c: &Cluster| c.is_polluted();
        let target = id_with_prefix("10");
        let out = route(&ov, &Label::parse("01").unwrap(), &target, &drops).unwrap();
        assert!(!out.delivered);
        assert_eq!(out.dropped_at.as_ref().unwrap().to_string(), "10");
    }

    #[test]
    fn drop_rate_scales_with_polluted_fraction() {
        let ov = overlay(2);
        let drops = |c: &Cluster| c.is_polluted();
        let mut rng = StdRng::seed_from_u64(2);
        let rate = delivery_rate(&ov, 4000, &drops, &mut rng);
        // Targets landing in "10" (1/4 of the space) are lost unless the
        // source is "10" itself; some transit traffic through "10" is lost
        // too. Expect noticeably below 1 but above 1/2.
        assert!(rate < 0.85, "rate {rate}");
        assert!(rate > 0.55, "rate {rate}");
    }

    #[test]
    fn redundancy_helps_transit_but_not_destination() {
        let ov = overlay(2);
        let drops = |c: &Cluster| c.is_polluted();
        let mut rng = StdRng::seed_from_u64(3);
        // Destination inside the polluted cluster: redundancy cannot help.
        let target = id_with_prefix("10");
        let ok = route_redundant(
            &ov,
            &Label::parse("01").unwrap(),
            &target,
            &drops,
            4,
            &mut rng,
        )
        .unwrap();
        assert!(!ok);
        // Destination elsewhere is always deliverable here since greedy
        // paths in the 4-leaf overlay only transit safe clusters.
        let target = id_with_prefix("11");
        let ok = route_redundant(
            &ov,
            &Label::parse("00").unwrap(),
            &target,
            &drops,
            4,
            &mut rng,
        )
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn source_never_drops_its_own_message() {
        let ov = overlay(2);
        let drops = |c: &Cluster| c.is_polluted();
        let target = id_with_prefix("11");
        let out = route(&ov, &Label::parse("10").unwrap(), &target, &drops).unwrap();
        assert!(out.delivered);
    }
}
