use std::collections::BTreeMap;

use crate::{Cluster, ClusterParams, Label, NodeId, OverlayError};

/// The overlay topology: a complete binary prefix tree whose leaves are
/// clusters (PeerCube-style, Section III-A).
///
/// Invariant: the cluster labels are prefix-free and cover the whole
/// identifier space (`Σ 2^{-len(label)} = 1`), so every identifier has
/// exactly one responsible cluster. `split` replaces a leaf by its two
/// children; `merge` collapses two sibling leaves into their parent.
///
/// # Example
///
/// ```
/// use pollux_overlay::{ClusterParams, Label, NodeId};
///
/// // See `Overlay::bootstrap` tests and the quickstart example for full
/// // construction; labels and lookups follow the prefix rule:
/// let label = Label::parse("10").unwrap();
/// let id = NodeId::from_data(b"x");
/// assert_eq!(label.is_prefix_of(&id), id.bit(0) && !id.bit(1));
/// ```
#[derive(Debug, Clone)]
pub struct Overlay {
    params: ClusterParams,
    clusters: BTreeMap<Label, Cluster>,
}

impl Overlay {
    /// Builds an overlay from initial clusters.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Topology`] when the labels do not form a
    /// prefix-free cover of the identifier space, or
    /// [`OverlayError::InvalidCluster`] when a cluster's parameters differ
    /// from `params`.
    pub fn bootstrap(params: ClusterParams, clusters: Vec<Cluster>) -> Result<Self, OverlayError> {
        if clusters.is_empty() {
            return Err(OverlayError::Topology("no clusters given".into()));
        }
        let mut map = BTreeMap::new();
        for cl in clusters {
            if *cl.params() != params {
                return Err(OverlayError::InvalidCluster(format!(
                    "cluster {} has mismatching size parameters",
                    cl.label()
                )));
            }
            let label = cl.label().clone();
            if map.insert(label.clone(), cl).is_some() {
                return Err(OverlayError::Topology(format!("duplicate label {label}")));
            }
        }
        let overlay = Overlay {
            params,
            clusters: map,
        };
        overlay.check_cover()?;
        Ok(overlay)
    }

    /// Validates the prefix-free-cover invariant.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Topology`] describing the violation.
    pub fn check_cover(&self) -> Result<(), OverlayError> {
        // Prefix-freeness: adjacent labels in sorted order expose nested
        // prefixes directly, but nesting can also skip; check all pairs is
        // O(n² · len) — fine at simulation scale, and exhaustive.
        let labels: Vec<&Label> = self.clusters.keys().collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                if a.is_prefix_of_label(b) || b.is_prefix_of_label(a) {
                    return Err(OverlayError::Topology(format!(
                        "labels {a} and {b} overlap"
                    )));
                }
            }
        }
        // Coverage: total measure must be 1 (with prefix-freeness this is
        // exact in binary fractions; f64 is exact for len ≤ 53).
        let total: f64 = labels.iter().map(|l| 0.5f64.powi(l.len() as i32)).sum();
        if (total - 1.0).abs() > 1e-12 {
            return Err(OverlayError::Topology(format!(
                "labels cover measure {total}, expected 1"
            )));
        }
        Ok(())
    }

    /// Cluster size parameters shared by all clusters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when the overlay holds no clusters (never after bootstrap).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Iterates over the clusters in label order.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.clusters.values()
    }

    /// All labels, in sorted order.
    pub fn labels(&self) -> Vec<Label> {
        self.clusters.keys().cloned().collect()
    }

    /// Looks a cluster up by label.
    pub fn cluster(&self, label: &Label) -> Option<&Cluster> {
        self.clusters.get(label)
    }

    /// Mutable access to a cluster by label.
    pub fn cluster_mut(&mut self, label: &Label) -> Option<&mut Cluster> {
        self.clusters.get_mut(label)
    }

    /// The unique cluster responsible for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the cover invariant is broken (cannot happen through this
    /// API).
    pub fn responsible(&self, id: &NodeId) -> &Cluster {
        self.clusters
            .values()
            .find(|cl| cl.label().is_prefix_of(id))
            .expect("prefix-free cover guarantees a responsible cluster")
    }

    /// The label of the cluster responsible for `id`.
    pub fn responsible_label(&self, id: &NodeId) -> Label {
        self.responsible(id).label().clone()
    }

    /// Leaves intersecting the region of `prefix`: every cluster whose
    /// label is a prefix of `prefix` or extends it.
    pub fn covering_leaves(&self, prefix: &Label) -> Vec<Label> {
        self.clusters
            .keys()
            .filter(|l| l.is_prefix_of_label(prefix) || prefix.is_prefix_of_label(l))
            .cloned()
            .collect()
    }

    /// Hypercube-style neighbours of a cluster: for each bit position of
    /// its label, the leaves covering the label with that bit flipped.
    pub fn neighbors(&self, label: &Label) -> Vec<Label> {
        let mut out = Vec::new();
        for i in 0..label.len() {
            for l in self.covering_leaves(&label.flip_bit(i)) {
                if &l != label && !out.contains(&l) {
                    out.push(l);
                }
            }
        }
        out
    }

    /// Splits the cluster at `label` into its two children
    /// (see [`crate::ops::split`] for member placement).
    ///
    /// # Errors
    ///
    /// * [`OverlayError::Topology`] when no cluster has this label.
    /// * Propagates the split preconditions of [`crate::ops::split`].
    pub fn split_cluster<R: rand::Rng + ?Sized>(
        &mut self,
        label: &Label,
        rng: &mut R,
    ) -> Result<(Label, Label), OverlayError> {
        let cluster = self
            .clusters
            .get(label)
            .ok_or_else(|| OverlayError::Topology(format!("no cluster labelled {label}")))?;
        let (d0, d1) = crate::ops::split(cluster, rng)?;
        let labels = (d0.label().clone(), d1.label().clone());
        self.clusters.remove(label);
        self.clusters.insert(labels.0.clone(), d0);
        self.clusters.insert(labels.1.clone(), d1);
        debug_assert!(self.check_cover().is_ok());
        Ok(labels)
    }

    /// Merges the (spare-empty) cluster at `label` into its sibling,
    /// producing their parent.
    ///
    /// The paper merges a draining cluster with "the closest cluster in its
    /// neighborhood"; in the prefix tree that is the sibling. When the
    /// sibling region is subdivided the merge is deferred (an error is
    /// returned) — collapsing a subdivided region would need a cascade of
    /// merges that real deployments avoid too.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::Topology`] when the label is unknown, is the root,
    ///   or the sibling is subdivided.
    /// * Propagates the merge preconditions of [`crate::ops::merge`].
    pub fn merge_cluster(&mut self, label: &Label) -> Result<Label, OverlayError> {
        let dissolved = self
            .clusters
            .get(label)
            .ok_or_else(|| OverlayError::Topology(format!("no cluster labelled {label}")))?;
        let sibling_label = label
            .sibling()
            .ok_or_else(|| OverlayError::Topology("cannot merge the root cluster".into()))?;
        let parent_label = label.parent().expect("non-root label has a parent");
        let survivor = self.clusters.get(&sibling_label).ok_or_else(|| {
            OverlayError::Topology(format!(
                "sibling {sibling_label} of {label} is subdivided; merge deferred"
            ))
        })?;
        let merged = crate::ops::merge(parent_label.clone(), survivor, dissolved)?;
        self.clusters.remove(label);
        self.clusters.remove(&sibling_label);
        self.clusters.insert(parent_label.clone(), merged);
        debug_assert!(self.check_cover().is_ok());
        Ok(parent_label)
    }

    /// Greedy prefix-routing next hop from the cluster at `from` towards
    /// `target`: the neighbour whose label agrees with `target` on at least
    /// one more leading bit. Returns `None` when `from` is already
    /// responsible for `target`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Topology`] when `from` is not a cluster
    /// label.
    pub fn next_hop(&self, from: &Label, target: &NodeId) -> Result<Option<Label>, OverlayError> {
        let from_cluster = self
            .clusters
            .get(from)
            .ok_or_else(|| OverlayError::Topology(format!("no cluster labelled {from}")))?;
        if from_cluster.label().is_prefix_of(target) {
            return Ok(None);
        }
        let p = from.common_prefix_with_id(target);
        // The corrected prefix: target's first p+1 bits.
        let corrected = Label::prefix_of_id(target, p + 1);
        let candidates = self.covering_leaves(&corrected);
        debug_assert!(!candidates.is_empty(), "cover invariant");
        // Pick the candidate that matches target deepest (models the
        // routing-table entry closest to the destination).
        let best = candidates
            .into_iter()
            .max_by_key(|l| l.common_prefix_with_id(target))
            .expect("candidates nonempty");
        Ok(Some(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Member, PeerId};
    use rand::{rngs::StdRng, SeedableRng};

    fn params() -> ClusterParams {
        ClusterParams::new(2, 6).unwrap()
    }

    fn member(i: u64) -> Member {
        Member {
            peer: PeerId(i),
            malicious: false,
            id: NodeId::from_data(&i.to_be_bytes()),
        }
    }

    /// A cluster at `label` whose members' ids are irrelevant for the test.
    fn cluster_at(label: &str, base: u64, spares: usize) -> Cluster {
        let label = Label::parse(label).unwrap();
        let core = vec![member(base), member(base + 1)];
        let spare: Vec<Member> = (0..spares as u64).map(|i| member(base + 2 + i)).collect();
        Cluster::new(label, params(), core, spare).unwrap()
    }

    fn four_leaf_overlay() -> Overlay {
        Overlay::bootstrap(
            params(),
            vec![
                cluster_at("00", 0, 2),
                cluster_at("01", 10, 2),
                cluster_at("10", 20, 2),
                cluster_at("11", 30, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bootstrap_validates_cover() {
        // Missing leaf.
        let r = Overlay::bootstrap(
            params(),
            vec![
                cluster_at("00", 0, 1),
                cluster_at("01", 10, 1),
                cluster_at("10", 20, 1),
            ],
        );
        assert!(r.is_err());
        // Overlapping labels.
        let r = Overlay::bootstrap(
            params(),
            vec![
                cluster_at("0", 0, 1),
                cluster_at("00", 10, 1),
                cluster_at("1", 20, 1),
            ],
        );
        assert!(r.is_err());
        // Unbalanced but complete tree is fine.
        let r = Overlay::bootstrap(
            params(),
            vec![
                cluster_at("0", 0, 1),
                cluster_at("10", 10, 1),
                cluster_at("11", 20, 1),
            ],
        );
        assert!(r.is_ok());
    }

    #[test]
    fn responsible_lookup_matches_prefix() {
        let overlay = four_leaf_overlay();
        for data in 0..50u64 {
            let id = NodeId::from_data(&data.to_be_bytes());
            let cl = overlay.responsible(&id);
            assert!(cl.label().is_prefix_of(&id));
        }
        assert_eq!(overlay.len(), 4);
    }

    #[test]
    fn neighbors_in_balanced_tree() {
        let overlay = four_leaf_overlay();
        let n = overlay.neighbors(&Label::parse("00").unwrap());
        // Flipping bit 0 -> region "10"; flipping bit 1 -> region "01".
        assert!(n.contains(&Label::parse("10").unwrap()));
        assert!(n.contains(&Label::parse("01").unwrap()));
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn neighbors_in_unbalanced_tree() {
        let overlay = Overlay::bootstrap(
            params(),
            vec![
                cluster_at("0", 0, 1),
                cluster_at("10", 10, 1),
                cluster_at("11", 20, 1),
            ],
        )
        .unwrap();
        let n = overlay.neighbors(&Label::parse("0").unwrap());
        // Flipping the single bit covers the whole "1" region: both leaves.
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn split_replaces_leaf_with_children() {
        let mut rng = StdRng::seed_from_u64(8);
        // Build a splittable cluster: full spare set (6) and members spread
        // across bit 2 under label "00".
        let label = Label::parse("00").unwrap();
        let mut core = Vec::new();
        let mut spare = Vec::new();
        let mut i = 0u64;
        // Collect members whose ids land in both children regions.
        let mut zeros = 0;
        let mut ones = 0;
        while core.len() + spare.len() < 8 {
            let m = member(1000 + i);
            i += 1;
            let side = m.id.bit(2);
            if side && ones >= 4 || (!side && zeros >= 4) {
                continue;
            }
            if side {
                ones += 1;
            } else {
                zeros += 1;
            }
            if core.len() < 2 {
                core.push(m);
            } else {
                spare.push(m);
            }
        }
        let splittable = Cluster::new(label.clone(), params(), core, spare).unwrap();
        let mut overlay = Overlay::bootstrap(
            params(),
            vec![splittable, cluster_at("01", 10, 2), cluster_at("1", 20, 2)],
        )
        .unwrap();
        let (l0, l1) = overlay.split_cluster(&label, &mut rng).unwrap();
        assert_eq!(l0.to_string(), "000");
        assert_eq!(l1.to_string(), "001");
        assert_eq!(overlay.len(), 4);
        assert!(overlay.check_cover().is_ok());
        assert!(overlay.cluster(&label).is_none());
    }

    #[test]
    fn merge_collapses_siblings() {
        let mut overlay = Overlay::bootstrap(
            params(),
            vec![
                cluster_at("00", 0, 0), // spare empty: must merge
                cluster_at("01", 10, 2),
                cluster_at("1", 20, 2),
            ],
        )
        .unwrap();
        let parent = overlay.merge_cluster(&Label::parse("00").unwrap()).unwrap();
        assert_eq!(parent.to_string(), "0");
        assert_eq!(overlay.len(), 2);
        let merged = overlay.cluster(&parent).unwrap();
        // Survivor "01" core kept, dissolved "00" core went to spares.
        assert_eq!(merged.core().len(), 2);
        assert_eq!(merged.spare_size(), 4);
    }

    #[test]
    fn merge_deferred_when_sibling_subdivided() {
        let mut overlay = Overlay::bootstrap(
            params(),
            vec![
                cluster_at("00", 0, 0),
                cluster_at("010", 10, 2),
                cluster_at("011", 15, 2),
                cluster_at("1", 20, 2),
            ],
        )
        .unwrap();
        let r = overlay.merge_cluster(&Label::parse("00").unwrap());
        assert!(matches!(r, Err(OverlayError::Topology(_))));
    }

    #[test]
    fn merge_root_impossible() {
        let mut overlay = Overlay::bootstrap(params(), vec![cluster_at("", 0, 0)]).unwrap();
        assert!(overlay.merge_cluster(&Label::root()).is_err());
    }

    #[test]
    fn next_hop_strictly_improves_prefix() {
        let overlay = four_leaf_overlay();
        for data in 0..30u64 {
            let target = NodeId::from_data(&data.to_be_bytes());
            let mut current = Label::parse("00").unwrap();
            let mut hops = 0;
            while let Some(next) = overlay.next_hop(&current, &target).unwrap() {
                assert!(
                    next.common_prefix_with_id(&target) > current.common_prefix_with_id(&target),
                    "hop from {current} to {next} does not improve"
                );
                current = next;
                hops += 1;
                assert!(hops <= 4, "routing loop towards {target}");
            }
            assert!(current.is_prefix_of(&target));
        }
    }

    #[test]
    fn next_hop_unknown_source_errors() {
        let overlay = four_leaf_overlay();
        let target = NodeId::from_data(b"t");
        assert!(overlay
            .next_hop(&Label::parse("0").unwrap(), &target)
            .is_err());
    }
}
