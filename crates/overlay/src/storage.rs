//! A key–value layer over the cluster topology — the DHT workload the
//! paper's attacks ultimately target.
//!
//! Keys live in the same 256-bit space as peer identifiers; the cluster
//! whose label prefixes a key is responsible for it and replicates the
//! value across its core members. Polluted clusters can deny or poison
//! lookups for the keys they own (the "preventing data indexed at targeted
//! nodes from being discovered" attack of the paper's introduction); the
//! store lets callers quantify exactly that.

use std::collections::HashMap;

use crate::{Cluster, Label, NodeId, Overlay, OverlayError};

/// Result of a `put`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PutOutcome {
    /// The value reached its responsible cluster and was replicated at the
    /// given number of core members.
    Stored {
        /// Label of the responsible cluster.
        owner: Label,
        /// Number of replicas written (the core size).
        replicas: usize,
    },
    /// An adversarial cluster dropped the request in transit or at the
    /// destination.
    Dropped {
        /// Where the request died.
        at: Label,
    },
}

/// Result of a `get`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetOutcome {
    /// The value was retrieved from the responsible cluster.
    Found(Vec<u8>),
    /// The responsible cluster answered honestly but holds no such key.
    NotFound,
    /// An adversarial cluster dropped or poisoned the lookup.
    Denied {
        /// Where the lookup died.
        at: Label,
    },
}

/// The key–value store: per-key values indexed independently of the
/// (changing) topology; ownership is resolved against the overlay at
/// access time, so splits and merges need no re-keying here.
#[derive(Debug, Clone, Default)]
pub struct KeyValueStore {
    items: HashMap<NodeId, Vec<u8>>,
}

impl KeyValueStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KeyValueStore::default()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Routes a `put` from the cluster labelled `from` and stores the
    /// value if the request survives; `drops` marks adversarial clusters.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Topology`] when `from` is not a cluster
    /// label.
    pub fn put(
        &mut self,
        overlay: &Overlay,
        from: &Label,
        key: NodeId,
        value: Vec<u8>,
        drops: &dyn Fn(&Cluster) -> bool,
    ) -> Result<PutOutcome, OverlayError> {
        let route = crate::routing::route(overlay, from, &key, drops)?;
        if !route.delivered {
            return Ok(PutOutcome::Dropped {
                at: route.dropped_at.expect("undelivered routes record a drop"),
            });
        }
        let owner = route.path.last().expect("path includes the source").clone();
        let replicas = overlay
            .cluster(&owner)
            .expect("routing ends at existing clusters")
            .core()
            .len();
        self.items.insert(key, value);
        Ok(PutOutcome::Stored { owner, replicas })
    }

    /// Routes a `get` from the cluster labelled `from`. A polluted (per
    /// `drops`) responsible cluster denies the lookup even when the key
    /// exists.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Topology`] when `from` is not a cluster
    /// label.
    pub fn get(
        &self,
        overlay: &Overlay,
        from: &Label,
        key: &NodeId,
        drops: &dyn Fn(&Cluster) -> bool,
    ) -> Result<GetOutcome, OverlayError> {
        let route = crate::routing::route(overlay, from, key, drops)?;
        if !route.delivered {
            return Ok(GetOutcome::Denied {
                at: route.dropped_at.expect("undelivered routes record a drop"),
            });
        }
        // The responsible cluster itself may be adversarial even when the
        // source equals the owner (route() exempts the source from
        // dropping its own message, but serving a lookup is a service of
        // the owner).
        let owner = route.path.last().expect("path includes the source");
        let owner_cluster = overlay
            .cluster(owner)
            .expect("routing ends at existing clusters");
        if drops(owner_cluster) {
            return Ok(GetOutcome::Denied { at: owner.clone() });
        }
        Ok(match self.items.get(key) {
            Some(v) => GetOutcome::Found(v.clone()),
            None => GetOutcome::NotFound,
        })
    }

    /// Fraction of stored keys currently owned by clusters matching
    /// `predicate` — e.g. the share of the key space held hostage by
    /// polluted clusters.
    pub fn fraction_owned_by(
        &self,
        overlay: &Overlay,
        predicate: &dyn Fn(&Cluster) -> bool,
    ) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        let hostage = self
            .items
            .keys()
            .filter(|key| predicate(overlay.responsible(key)))
            .count();
        hostage as f64 / self.items.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterParams, Member, PeerId};

    fn member(i: u64, malicious: bool) -> Member {
        Member {
            peer: PeerId(i),
            malicious,
            id: NodeId::from_data(&i.to_be_bytes()),
        }
    }

    fn overlay_with_polluted(polluted_label: Option<&str>) -> Overlay {
        let params = ClusterParams::new(2, 6).unwrap();
        let mut clusters = Vec::new();
        for (idx, label) in ["00", "01", "10", "11"].iter().enumerate() {
            let base = (idx as u64 + 1) * 100;
            let is_polluted = polluted_label == Some(*label);
            let core = vec![member(base, is_polluted), member(base + 1, is_polluted)];
            let spare = vec![member(base + 2, false)];
            clusters.push(Cluster::new(Label::parse(label).unwrap(), params, core, spare).unwrap());
        }
        Overlay::bootstrap(params, clusters).unwrap()
    }

    fn key_with_prefix(prefix: &str) -> NodeId {
        let want = Label::parse(prefix).unwrap();
        (0..100_000u64)
            .map(|i| NodeId::from_data(&i.to_be_bytes()))
            .find(|id| want.is_prefix_of(id))
            .expect("prefix reachable")
    }

    #[test]
    fn put_get_roundtrip() {
        let overlay = overlay_with_polluted(None);
        let mut store = KeyValueStore::new();
        let drops = |c: &Cluster| c.is_polluted();
        let key = key_with_prefix("10");
        let from = Label::parse("00").unwrap();
        let put = store
            .put(&overlay, &from, key, b"value".to_vec(), &drops)
            .unwrap();
        assert!(matches!(
            put,
            PutOutcome::Stored { ref owner, replicas: 2 } if owner.to_string() == "10"
        ));
        assert_eq!(store.len(), 1);
        let got = store.get(&overlay, &from, &key, &drops).unwrap();
        assert_eq!(got, GetOutcome::Found(b"value".to_vec()));
        // Lookups from other clusters succeed too.
        let got = store
            .get(&overlay, &Label::parse("11").unwrap(), &key, &drops)
            .unwrap();
        assert_eq!(got, GetOutcome::Found(b"value".to_vec()));
    }

    #[test]
    fn missing_key_reports_not_found() {
        let overlay = overlay_with_polluted(None);
        let store = KeyValueStore::new();
        assert!(store.is_empty());
        let got = store
            .get(
                &overlay,
                &Label::parse("00").unwrap(),
                &key_with_prefix("01"),
                &|_| false,
            )
            .unwrap();
        assert_eq!(got, GetOutcome::NotFound);
    }

    #[test]
    fn polluted_owner_denies_lookups_and_drops_puts() {
        let overlay = overlay_with_polluted(Some("11"));
        let mut store = KeyValueStore::new();
        let drops = |c: &Cluster| c.is_polluted();
        let key = key_with_prefix("11");
        let from = Label::parse("00").unwrap();
        // Put dies at the polluted destination.
        let put = store
            .put(&overlay, &from, key, b"v".to_vec(), &drops)
            .unwrap();
        assert!(matches!(put, PutOutcome::Dropped { ref at } if at.to_string() == "11"));
        assert!(store.is_empty());
        // Even a key stored before pollution is denied afterwards.
        let clean = overlay_with_polluted(None);
        store
            .put(&clean, &from, key, b"v".to_vec(), &|_| false)
            .unwrap();
        let got = store.get(&overlay, &from, &key, &drops).unwrap();
        assert!(matches!(got, GetOutcome::Denied { ref at } if at.to_string() == "11"));
        // And the owner cannot serve itself either once polluted.
        let got = store
            .get(&overlay, &Label::parse("11").unwrap(), &key, &drops)
            .unwrap();
        assert!(matches!(got, GetOutcome::Denied { .. }));
    }

    #[test]
    fn fraction_owned_by_polluted_clusters() {
        let overlay = overlay_with_polluted(Some("01"));
        let mut store = KeyValueStore::new();
        // Store one key per quadrant (bypassing drops for setup).
        for prefix in ["00", "01", "10", "11"] {
            let key = key_with_prefix(prefix);
            store
                .put(
                    &overlay,
                    &Label::parse(prefix).unwrap(),
                    key,
                    prefix.as_bytes().to_vec(),
                    &|_| false,
                )
                .unwrap();
        }
        let frac = store.fraction_owned_by(&overlay, &|c| c.is_polluted());
        assert!((frac - 0.25).abs() < 1e-12);
        let none = KeyValueStore::new();
        assert_eq!(none.fraction_owned_by(&overlay, &|_| true), 0.0);
    }
}
