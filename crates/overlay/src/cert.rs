//! X.509-lite certificates and a simulated certification authority.
//!
//! The paper (Section III-C/D) assumes peers acquire X.509 certificates
//! from trustworthy CAs; the certified creation time `t0` anchors the
//! limited-lifetime incarnation scheme, and the CA signature makes `t0`
//! tamper-evident. Inside a simulation there is no PKI to interoperate
//! with, so signatures are replaced by HMAC-SHA-256 tags under a CA-held
//! secret — unforgeable to any party without the secret, which is the only
//! property the protocol uses (see the "Cryptography substitution" note
//! in the repository README).

use crate::hash::{hmac_sha256, sha256};
use crate::{NodeId, OverlayError};

/// A certificate binding a subject to a public key and a creation time.
///
/// # Example
///
/// ```
/// use pollux_overlay::cert::CertificationAuthority;
///
/// let ca = CertificationAuthority::new(b"ca-secret");
/// let cert = ca.issue("peer-1", [7u8; 32], 1000);
/// assert!(ca.verify(&cert).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject name (unique per peer in the simulation).
    pub subject: String,
    /// The subject's public key (simulated: opaque bytes).
    pub public_key: [u8; 32],
    /// Certified creation time `t0` (simulation time units).
    pub t0: u64,
    /// CA-assigned serial number.
    pub serial: u64,
    /// CA tag over all previous fields.
    signature: [u8; 32],
}

impl Certificate {
    /// Deterministic byte encoding of the signed fields.
    fn signed_bytes(subject: &str, public_key: &[u8; 32], t0: u64, serial: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(subject.len() + 32 + 16 + 1);
        buf.extend_from_slice(&(subject.len() as u32).to_be_bytes());
        buf.extend_from_slice(subject.as_bytes());
        buf.extend_from_slice(public_key);
        buf.extend_from_slice(&t0.to_be_bytes());
        buf.extend_from_slice(&serial.to_be_bytes());
        buf
    }

    /// The paper's initial identifier `id⁰`: a hash over certificate
    /// fields **including** `t0`, which makes every re-registration yield a
    /// fresh unpredictable identifier.
    pub fn initial_id(&self) -> NodeId {
        let bytes = Self::signed_bytes(&self.subject, &self.public_key, self.t0, self.serial);
        NodeId::from_bytes(sha256(&bytes))
    }

    /// The signature bytes (read-only; set by the CA at issue time).
    pub fn signature(&self) -> &[u8; 32] {
        &self.signature
    }
}

/// A simulated certification authority.
///
/// Issues certificates tagged with `HMAC(secret, fields)` and verifies
/// them. Anyone holding a [`CertificationAuthority`] value can verify; in
/// the simulation the CA is a trusted oracle, matching the paper's
/// "trustworthy CAs" assumption.
#[derive(Debug, Clone)]
pub struct CertificationAuthority {
    secret: [u8; 32],
    next_serial: std::cell::Cell<u64>,
}

impl CertificationAuthority {
    /// Creates a CA from seed material (hashed into the working secret).
    pub fn new(seed: &[u8]) -> Self {
        CertificationAuthority {
            secret: sha256(seed),
            next_serial: std::cell::Cell::new(1),
        }
    }

    /// Issues a certificate for `subject` with creation time `t0`.
    pub fn issue(&self, subject: &str, public_key: [u8; 32], t0: u64) -> Certificate {
        let serial = self.next_serial.get();
        self.next_serial.set(serial + 1);
        let bytes = Certificate::signed_bytes(subject, &public_key, t0, serial);
        Certificate {
            subject: subject.to_owned(),
            public_key,
            t0,
            serial,
            signature: hmac_sha256(&self.secret, &bytes),
        }
    }

    /// Verifies a certificate's tag.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::BadCertificate`] when the tag does not match
    /// the fields (i.e. any field was tampered with after issue).
    pub fn verify(&self, cert: &Certificate) -> Result<(), OverlayError> {
        let bytes =
            Certificate::signed_bytes(&cert.subject, &cert.public_key, cert.t0, cert.serial);
        let expect = hmac_sha256(&self.secret, &bytes);
        if expect != cert.signature {
            return Err(OverlayError::BadCertificate(format!(
                "signature mismatch for subject {}",
                cert.subject
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify() {
        let ca = CertificationAuthority::new(b"seed");
        let cert = ca.issue("alice", [1u8; 32], 42);
        assert!(ca.verify(&cert).is_ok());
        assert_eq!(cert.t0, 42);
    }

    #[test]
    fn serials_increment() {
        let ca = CertificationAuthority::new(b"seed");
        let a = ca.issue("a", [0u8; 32], 0);
        let b = ca.issue("b", [0u8; 32], 0);
        assert_ne!(a.serial, b.serial);
    }

    #[test]
    fn tampering_is_detected() {
        let ca = CertificationAuthority::new(b"seed");
        let cert = ca.issue("alice", [1u8; 32], 42);
        // A malicious peer tries to extend its lifetime by faking t0.
        let mut forged = cert.clone();
        forged.t0 = 9999;
        assert!(ca.verify(&forged).is_err());
        let mut forged = cert.clone();
        forged.subject = "bob".into();
        assert!(ca.verify(&forged).is_err());
        let mut forged = cert;
        forged.public_key = [2u8; 32];
        assert!(ca.verify(&forged).is_err());
    }

    #[test]
    fn different_ca_rejects() {
        let ca1 = CertificationAuthority::new(b"seed-1");
        let ca2 = CertificationAuthority::new(b"seed-2");
        let cert = ca1.issue("alice", [1u8; 32], 42);
        assert!(ca2.verify(&cert).is_err());
    }

    #[test]
    fn initial_id_depends_on_t0_and_subject() {
        let ca = CertificationAuthority::new(b"seed");
        let a = ca.issue("alice", [1u8; 32], 42);
        let b = ca.issue("alice", [1u8; 32], 43);
        assert_ne!(a.initial_id(), b.initial_id());
        let c = ca.issue("carol", [1u8; 32], 42);
        assert_ne!(a.initial_id(), c.initial_id());
        // Deterministic: same fields and serial give the same id.
        assert_eq!(a.initial_id(), a.initial_id());
    }

    #[test]
    fn encoding_is_injective_on_length_boundaries() {
        // "ab" + "c" must not collide with "a" + "bc" thanks to the length
        // prefix.
        let x = Certificate::signed_bytes("ab", &[b'c'; 32], 0, 0);
        let y = Certificate::signed_bytes("a", &[b'c'; 32], 0, 0);
        assert_ne!(x, y);
    }
}
