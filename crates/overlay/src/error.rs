use std::error::Error;
use std::fmt;

/// Errors produced by the overlay substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OverlayError {
    /// A cluster operation violated a structural precondition (wrong core
    /// size, spare bounds, membership, …).
    InvalidCluster(String),
    /// An operation was applied to a cluster in the wrong state (e.g.
    /// splitting a cluster whose spare set is not full).
    PreconditionFailed(String),
    /// A peer was not found where it was required.
    UnknownPeer(String),
    /// A label/topology operation failed (no such cluster, overlapping
    /// labels, …).
    Topology(String),
    /// Certificate validation failed.
    BadCertificate(String),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::InvalidCluster(m) => write!(f, "invalid cluster: {m}"),
            OverlayError::PreconditionFailed(m) => write!(f, "operation precondition failed: {m}"),
            OverlayError::UnknownPeer(m) => write!(f, "unknown peer: {m}"),
            OverlayError::Topology(m) => write!(f, "topology error: {m}"),
            OverlayError::BadCertificate(m) => write!(f, "bad certificate: {m}"),
        }
    }
}

impl Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        for (e, needle) in [
            (OverlayError::InvalidCluster("x".into()), "invalid cluster"),
            (OverlayError::PreconditionFailed("x".into()), "precondition"),
            (OverlayError::UnknownPeer("x".into()), "unknown peer"),
            (OverlayError::Topology("x".into()), "topology"),
            (OverlayError::BadCertificate("x".into()), "certificate"),
        ] {
            assert!(e.to_string().contains(needle));
        }
    }
}
