use std::fmt;

use crate::hash;

/// Number of bits in a [`NodeId`].
pub const ID_BITS: usize = 256;

/// A 256-bit overlay identifier.
///
/// The paper draws identifiers from an `m`-bit space via a strong hash
/// (`m = 128` with MD5 in the text); this reproduction uses `m = 256` with
/// its own SHA-256 — the model only requires collisions to be negligible
/// and bits to be uniform. Bits are indexed most-significant first, which
/// makes "the first `n` bits" the natural cluster-label prefix.
///
/// # Example
///
/// ```
/// use pollux_overlay::NodeId;
///
/// let id = NodeId::from_bytes([0b1010_0000; 32]);
/// assert!(id.bit(0));
/// assert!(!id.bit(1));
/// assert!(id.bit(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId([u8; 32]);

impl NodeId {
    /// Wraps raw bytes as an identifier.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        NodeId(bytes)
    }

    /// Hashes arbitrary data into an identifier.
    pub fn from_data(data: &[u8]) -> Self {
        NodeId(hash::sha256(data))
    }

    /// Derives the incarnation-`k` identifier from an initial identifier:
    /// the paper's `id = H(id⁰ × k)`.
    pub fn derive_incarnation(&self, k: u64) -> NodeId {
        let mut buf = [0u8; 40];
        buf[..32].copy_from_slice(&self.0);
        buf[32..].copy_from_slice(&k.to_be_bytes());
        NodeId(hash::sha256(&buf))
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Bit `i`, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < ID_BITS, "bit index {i} out of range");
        (self.0[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// Length of the common most-significant-bit prefix with `other`
    /// (0 to 256). This is the PeerCube distance criterion: larger shared
    /// prefix means closer.
    pub fn common_prefix_len(&self, other: &NodeId) -> usize {
        for (i, (a, b)) in self.0.iter().zip(other.0.iter()).enumerate() {
            let x = a ^ b;
            if x != 0 {
                return i * 8 + x.leading_zeros() as usize;
            }
        }
        ID_BITS
    }

    /// Bitwise XOR distance (Kademlia-style), usable as a total order on
    /// distances from a fixed point.
    pub fn xor_distance(&self, other: &NodeId) -> NodeId {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        NodeId(out)
    }

    /// Abbreviated hex form (first 8 hex digits), for logs.
    pub fn short_hex(&self) -> String {
        hash::to_hex(&self.0[..4])
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", hash::to_hex(&self.0))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({}…)", self.short_hex())
    }
}

impl From<[u8; 32]> for NodeId {
    fn from(bytes: [u8; 32]) -> Self {
        NodeId(bytes)
    }
}

/// A cluster label: a binary prefix of the identifier space.
///
/// Labels form the leaves of a binary prefix tree; a cluster with label
/// `b₁…b_n` is responsible for every identifier whose first `n` bits are
/// `b₁…b_n`. Splitting replaces a label by its two children; merging
/// replaces two sibling labels by their parent.
///
/// # Example
///
/// ```
/// use pollux_overlay::Label;
///
/// let root = Label::root();
/// let (zero, one) = root.children();
/// assert_eq!(zero.to_string(), "0");
/// assert_eq!(one.parent(), Some(root));
/// assert_eq!(zero.sibling(), Some(one));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    bits: Vec<bool>,
}

impl Label {
    /// The empty label (the root: responsible for the whole space).
    pub fn root() -> Self {
        Label { bits: Vec::new() }
    }

    /// Builds a label from explicit bits, most significant first.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Label { bits }
    }

    /// Parses a label from a `'0'`/`'1'` string.
    ///
    /// Returns `None` when the string contains other characters.
    pub fn parse(s: &str) -> Option<Self> {
        let mut bits = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => return None,
            }
        }
        Some(Label { bits })
    }

    /// The first `depth` bits of an identifier, as a label.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 256`.
    pub fn prefix_of_id(id: &NodeId, depth: usize) -> Self {
        assert!(depth <= ID_BITS, "depth {depth} exceeds id width");
        Label {
            bits: (0..depth).map(|i| id.bit(i)).collect(),
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` for the root label.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit `i` of the label.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The two children `label·0` and `label·1`.
    pub fn children(&self) -> (Label, Label) {
        let mut zero = self.bits.clone();
        zero.push(false);
        let mut one = self.bits.clone();
        one.push(true);
        (Label { bits: zero }, Label { bits: one })
    }

    /// The parent label, or `None` for the root.
    pub fn parent(&self) -> Option<Label> {
        if self.bits.is_empty() {
            return None;
        }
        let mut bits = self.bits.clone();
        bits.pop();
        Some(Label { bits })
    }

    /// The sibling (same parent, last bit flipped), or `None` for the root.
    pub fn sibling(&self) -> Option<Label> {
        if self.bits.is_empty() {
            return None;
        }
        let mut bits = self.bits.clone();
        let last = bits.len() - 1;
        bits[last] = !bits[last];
        Some(Label { bits })
    }

    /// Label with bit `i` flipped (a hypercube neighbour direction).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip_bit(&self, i: usize) -> Label {
        let mut bits = self.bits.clone();
        bits[i] = !bits[i];
        Label { bits }
    }

    /// `true` when this label is a prefix of `id`.
    pub fn is_prefix_of(&self, id: &NodeId) -> bool {
        self.bits.iter().enumerate().all(|(i, &b)| id.bit(i) == b)
    }

    /// `true` when this label is a (non-strict) prefix of `other`.
    pub fn is_prefix_of_label(&self, other: &Label) -> bool {
        self.bits.len() <= other.bits.len()
            && self.bits.iter().zip(other.bits.iter()).all(|(a, b)| a == b)
    }

    /// Length of the common prefix with an identifier.
    pub fn common_prefix_with_id(&self, id: &NodeId) -> usize {
        let mut n = 0;
        for (i, &b) in self.bits.iter().enumerate() {
            if id.bit(i) != b {
                break;
            }
            n += 1;
        }
        n
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "ε");
        }
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_indexing_msb_first() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0b1000_0001;
        bytes[1] = 0b0100_0000;
        let id = NodeId::from_bytes(bytes);
        assert!(id.bit(0));
        assert!(!id.bit(1));
        assert!(id.bit(7));
        assert!(!id.bit(8));
        assert!(id.bit(9));
    }

    #[test]
    fn common_prefix_len_cases() {
        let a = NodeId::from_bytes([0u8; 32]);
        let mut b_bytes = [0u8; 32];
        b_bytes[0] = 0b0000_0001; // differs at bit 7
        let b = NodeId::from_bytes(b_bytes);
        assert_eq!(a.common_prefix_len(&b), 7);
        assert_eq!(a.common_prefix_len(&a), ID_BITS);
        let mut c_bytes = [0u8; 32];
        c_bytes[31] = 1; // differs at the very last bit
        let c = NodeId::from_bytes(c_bytes);
        assert_eq!(a.common_prefix_len(&c), 255);
    }

    #[test]
    fn xor_distance_properties() {
        let a = NodeId::from_data(b"a");
        let b = NodeId::from_data(b"b");
        assert_eq!(a.xor_distance(&a), NodeId::from_bytes([0u8; 32]));
        assert_eq!(a.xor_distance(&b), b.xor_distance(&a));
    }

    #[test]
    fn derive_incarnation_changes_id() {
        let id0 = NodeId::from_data(b"peer");
        let id1 = id0.derive_incarnation(1);
        let id2 = id0.derive_incarnation(2);
        assert_ne!(id1, id2);
        assert_ne!(id0, id1);
        // Deterministic.
        assert_eq!(id0.derive_incarnation(1), id1);
    }

    #[test]
    fn display_and_debug() {
        let id = NodeId::from_bytes([0xab; 32]);
        assert_eq!(id.to_string().len(), 64);
        assert!(format!("{id:?}").contains("abababab"));
        assert_eq!(id.short_hex(), "abababab");
    }

    #[test]
    fn label_tree_algebra() {
        let root = Label::root();
        assert!(root.is_empty());
        assert_eq!(root.parent(), None);
        assert_eq!(root.sibling(), None);
        let (zero, one) = root.children();
        assert_eq!(zero.len(), 1);
        assert_eq!(zero.sibling(), Some(one.clone()));
        assert_eq!(one.parent(), Some(root.clone()));
        let (zz, zo) = zero.children();
        assert_eq!(zz.to_string(), "00");
        assert_eq!(zo.to_string(), "01");
        assert!(zero.is_prefix_of_label(&zo));
        assert!(!one.is_prefix_of_label(&zo));
        assert_eq!(zo.flip_bit(0).to_string(), "11");
    }

    #[test]
    fn label_parse_roundtrip() {
        let l = Label::parse("0110").unwrap();
        assert_eq!(l.to_string(), "0110");
        assert_eq!(Label::parse("01x"), None);
        assert_eq!(Label::parse("").unwrap(), Label::root());
        assert_eq!(Label::root().to_string(), "ε");
    }

    #[test]
    fn label_prefix_of_id() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0b1010_0000;
        let id = NodeId::from_bytes(bytes);
        assert!(Label::parse("101").unwrap().is_prefix_of(&id));
        assert!(!Label::parse("100").unwrap().is_prefix_of(&id));
        assert!(Label::root().is_prefix_of(&id));
        assert_eq!(Label::prefix_of_id(&id, 4).to_string(), "1010");
        assert_eq!(Label::parse("100").unwrap().common_prefix_with_id(&id), 2);
    }

    #[test]
    fn prefix_uniqueness_over_hashes() {
        // Two distinct data values share only a short prefix with high
        // probability; sanity check there is no accidental structure.
        let a = NodeId::from_data(b"data-1");
        let b = NodeId::from_data(b"data-2");
        assert!(a.common_prefix_len(&b) < 64);
    }
}
