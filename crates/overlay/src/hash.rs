//! SHA-256 and HMAC-SHA-256, implemented from scratch.
//!
//! The paper derives peer identifiers by hashing certificate fields
//! (`id⁰ = H(certificate fields)`) and re-hashing with the incarnation
//! number (`id = H(id⁰ × k)`). The reproduction needs a collision-resistant
//! `H` with uniformly distributed output; SHA-256 (FIPS 180-4) is
//! implemented here directly so the workspace carries no cryptography
//! dependency. HMAC (RFC 2104) provides the keyed tags our simulated
//! certification authority uses in place of RSA signatures — see the
//! "Cryptography substitution" note in the repository README.
//!
//! # Example
//!
//! ```
//! use pollux_overlay::hash::sha256_hex;
//!
//! assert_eq!(
//!     sha256_hex(b"abc"),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

/// SHA-256 round constants (fractional parts of cube roots of the first 64
/// primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (fractional parts of square roots of the first 8
/// primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use pollux_overlay::hash::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Pending input not yet forming a full 64-byte block.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            length: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let want = 64 - self.buffer_len;
            let take = want.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        // `update` adjusted self.length; remember the real length first —
        // bit_len above was captured before padding.
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        self.length = 0; // stop double counting; buffer is what matters now
        let mut block = [0u8; 64];
        block[..56].copy_from_slice(&self.buffer[..56]);
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One compression round over a 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 returning lowercase hex.
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

/// HMAC-SHA-256 per RFC 2104.
///
/// ```
/// use pollux_overlay::hash::{hmac_sha256, to_hex};
/// let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
/// assert_eq!(
///     to_hex(&tag),
///     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; 64];
    let mut opad = [0u8; 64];
    for i in 0..64 {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Lowercase hex encoding of arbitrary bytes.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / de-facto standard test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn exactly_one_block_and_boundaries() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        let cases: [(usize, &str); 3] = [
            (
                55,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
        ];
        for (len, want) in cases {
            let data = vec![b'a'; len];
            assert_eq!(sha256_hex(&data), want, "length {len}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_one_shot_for_odd_chunkings() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1037).collect();
        let want = sha256(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 200] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), want, "chunk size {chunk_size}");
        }
    }

    // RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn hmac_rfc4231_case_1() {
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        // RFC 4231 case 6: 131-byte key.
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages() {
        let a = hmac_sha256(b"k1", b"m");
        let b = hmac_sha256(b"k2", b"m");
        let c = hmac_sha256(b"k1", b"m2");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hex_encoding() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn digest_bits_look_uniform() {
        // Cheap avalanche check: flipping one input bit flips ~half the
        // output bits.
        let base = sha256(b"pollux");
        let flipped = sha256(b"qollux");
        let differing: u32 = base
            .iter()
            .zip(flipped.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            (80..=176).contains(&differing),
            "differing bits: {differing}"
        );
    }
}
