use rand::RngExt;

use crate::cert::{Certificate, CertificationAuthority};
use crate::incarnation::IncarnationPolicy;
use crate::NodeId;

/// Stable handle identifying a peer inside a [`PeerRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// Whether a peer follows the protocol or is controlled by the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Behavior {
    /// Always follows the prescribed protocol.
    Honest,
    /// Controlled by the (colluding) adversary.
    Malicious,
}

impl Behavior {
    /// `true` for [`Behavior::Malicious`].
    pub fn is_malicious(&self) -> bool {
        matches!(self, Behavior::Malicious)
    }
}

/// A peer of the universe `U`: certificate, derived initial identifier and
/// behaviour.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Registry handle.
    pub id: PeerId,
    /// CA-issued certificate (carries `t0`).
    pub certificate: Certificate,
    /// Initial identifier `id⁰ = H(certificate fields)`.
    pub initial_id: NodeId,
    /// Honest or malicious.
    pub behavior: Behavior,
}

impl Peer {
    /// The identifier this peer presents at time `t` under `policy`.
    pub fn current_id(&self, policy: &IncarnationPolicy, t: f64) -> NodeId {
        policy.current_id(&self.initial_id, self.certificate.t0 as f64, t)
    }

    /// The peer's current incarnation number at time `t`.
    pub fn incarnation(&self, policy: &IncarnationPolicy, t: f64) -> u64 {
        policy.incarnation(self.certificate.t0 as f64, t)
    }
}

/// The universe of peers: issues certificates through a CA and tracks which
/// peers the adversary controls (a fraction `μ`).
///
/// # Example
///
/// ```
/// use pollux_overlay::PeerRegistry;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let registry = PeerRegistry::generate(100, 0.25, &mut rng);
/// let malicious = registry.peers().iter().filter(|p| p.behavior.is_malicious()).count();
/// assert!(malicious > 10 && malicious < 40);
/// ```
#[derive(Debug, Clone)]
pub struct PeerRegistry {
    ca: CertificationAuthority,
    peers: Vec<Peer>,
    mu: f64,
}

impl PeerRegistry {
    /// Generates `n` peers, each malicious independently with probability
    /// `mu`, with certificates issued at `t0 = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is outside `[0, 1]`.
    pub fn generate<R: rand::Rng + ?Sized>(n: usize, mu: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&mu), "mu must lie in [0,1], got {mu}");
        let ca = CertificationAuthority::new(b"pollux-registry-ca");
        let mut peers = Vec::with_capacity(n);
        for i in 0..n {
            let mut public_key = [0u8; 32];
            rng.fill(&mut public_key[..]);
            let cert = ca.issue(&format!("peer-{i}"), public_key, 0);
            let initial_id = cert.initial_id();
            peers.push(Peer {
                id: PeerId(i as u64),
                certificate: cert,
                initial_id,
                behavior: if rng.random_bool(mu) {
                    Behavior::Malicious
                } else {
                    Behavior::Honest
                },
            });
        }
        PeerRegistry { ca, peers, mu }
    }

    /// The certification authority of this universe.
    pub fn ca(&self) -> &CertificationAuthority {
        &self.ca
    }

    /// All peers.
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// The adversary's global fraction `μ` used at generation time.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Looks a peer up by handle.
    pub fn peer(&self, id: PeerId) -> Option<&Peer> {
        self.peers.get(id.0 as usize)
    }

    /// Number of peers in the universe.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Samples a uniformly random peer handle.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> PeerId {
        assert!(!self.peers.is_empty(), "cannot sample from empty registry");
        PeerId(rng.random_range(0..self.peers.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generation_respects_mu_statistically() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = PeerRegistry::generate(10_000, 0.3, &mut rng);
        let malicious = reg
            .peers()
            .iter()
            .filter(|p| p.behavior.is_malicious())
            .count();
        let frac = malicious as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "fraction {frac}");
        assert_eq!(reg.len(), 10_000);
        assert!(!reg.is_empty());
        assert_eq!(reg.mu(), 0.3);
    }

    #[test]
    fn mu_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let honest = PeerRegistry::generate(50, 0.0, &mut rng);
        assert!(honest.peers().iter().all(|p| !p.behavior.is_malicious()));
        let bad = PeerRegistry::generate(50, 1.0, &mut rng);
        assert!(bad.peers().iter().all(|p| p.behavior.is_malicious()));
    }

    #[test]
    fn certificates_verify_and_ids_are_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = PeerRegistry::generate(64, 0.2, &mut rng);
        let mut ids = std::collections::HashSet::new();
        for p in reg.peers() {
            assert!(reg.ca().verify(&p.certificate).is_ok());
            assert!(ids.insert(p.initial_id), "duplicate id for {}", p.id);
        }
    }

    #[test]
    fn lookup_and_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let reg = PeerRegistry::generate(10, 0.5, &mut rng);
        assert!(reg.peer(PeerId(3)).is_some());
        assert!(reg.peer(PeerId(10)).is_none());
        for _ in 0..100 {
            let id = reg.sample(&mut rng);
            assert!(reg.peer(id).is_some());
        }
    }

    #[test]
    fn current_id_changes_across_incarnations() {
        let mut rng = StdRng::seed_from_u64(6);
        let reg = PeerRegistry::generate(1, 0.0, &mut rng);
        let p = &reg.peers()[0];
        let policy = IncarnationPolicy::new(100.0, 2.0).unwrap();
        let early = p.current_id(&policy, 10.0);
        let late = p.current_id(&policy, 150.0);
        assert_ne!(early, late);
        assert_eq!(p.incarnation(&policy, 10.0), 1);
        assert_eq!(p.incarnation(&policy, 150.0), 2);
    }
}
