//! Limited-lifetime identifier incarnations (Section III-D of the paper).
//!
//! The current incarnation of a peer whose certificate was created at `t0`
//! is `k = ⌈(t − t0)/L⌉`, where `L` is the incarnation lifetime; the k-th
//! incarnation expires when the peer's clock reads `t0 + kL`. Because
//! clocks of correct peers may deviate by at most `W`, verifiers accept
//! *two* incarnations around expiry: `k = ⌈(t − W/2 − t0)/L⌉` and
//! `k' = ⌈(t + W/2 − t0)/L⌉`.
//!
//! The module also carries the calibration used throughout the paper's
//! experiments: `d` is the per-event probability that an identifier has
//! *not* expired, the half-life is `t½ = ln 2 / (1 − d)`, and
//! `L = 6.65 · t½` guarantees ≥ 99 % of a population has re-keyed within
//! one lifetime (`6.65 ≥ ln 100 / ln 2`).

use crate::NodeId;

/// Factor relating the half-life to the lifetime so that 99 % of a
/// population decays within `L` (the paper sets `L = 6.65 · t½`).
pub const LIFETIME_HALFLIFE_FACTOR: f64 = 6.65;

/// Incarnation parameters: lifetime `L` and grace window `W`.
///
/// # Example
///
/// ```
/// use pollux_overlay::incarnation::IncarnationPolicy;
///
/// let policy = IncarnationPolicy::new(100.0, 4.0).unwrap();
/// assert_eq!(policy.incarnation(0.0, 50.0), 1);
/// assert_eq!(policy.incarnation(0.0, 150.0), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncarnationPolicy {
    lifetime: f64,
    grace: f64,
}

impl IncarnationPolicy {
    /// Creates a policy with lifetime `L` and grace window `W`.
    ///
    /// Returns `None` when `L ≤ 0`, `W < 0`, or `W ≥ L` (the grace window
    /// must not span a whole incarnation).
    pub fn new(lifetime: f64, grace: f64) -> Option<Self> {
        let valid = lifetime > 0.0 && grace >= 0.0 && grace < lifetime;
        if !valid {
            return None;
        }
        Some(IncarnationPolicy { lifetime, grace })
    }

    /// Builds the policy from the paper's per-event survival probability
    /// `d ∈ (0, 1)`: `L = 6.65 · ln 2 / (1 − d)`.
    ///
    /// Returns `None` for `d` outside `(0, 1)` or an invalid grace window.
    pub fn from_survival_probability(d: f64, grace: f64) -> Option<Self> {
        if !(0.0 < d && d < 1.0) {
            return None;
        }
        IncarnationPolicy::new(lifetime_from_survival(d), grace)
    }

    /// The lifetime `L`.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// The grace window `W`.
    pub fn grace(&self) -> f64 {
        self.grace
    }

    /// The peer's own current incarnation at local time `t` for creation
    /// time `t0`: `max(1, ⌈(t − t0)/L⌉)`.
    ///
    /// Times before `t0` clamp to the first incarnation.
    pub fn incarnation(&self, t0: f64, t: f64) -> u64 {
        let k = ((t - t0) / self.lifetime).ceil();
        if k < 1.0 {
            1
        } else {
            k as u64
        }
    }

    /// Expiry time of incarnation `k`: `t0 + kL`.
    pub fn expiry(&self, t0: f64, k: u64) -> f64 {
        t0 + k as f64 * self.lifetime
    }

    /// The (one or two) incarnations another correct peer must accept at
    /// time `t`, per the grace-window rule.
    pub fn valid_incarnations(&self, t0: f64, t: f64) -> (u64, u64) {
        let k = self.incarnation(t0, t - self.grace / 2.0);
        let k_prime = self.incarnation(t0, t + self.grace / 2.0);
        (k, k_prime)
    }

    /// `true` when `presented`, claimed by a peer with initial identifier
    /// `id0` and creation time `t0`, is a valid current identifier at
    /// verification time `t`.
    pub fn is_id_valid(&self, id0: &NodeId, t0: f64, presented: &NodeId, t: f64) -> bool {
        let (k, k_prime) = self.valid_incarnations(t0, t);
        *presented == id0.derive_incarnation(k)
            || (k_prime != k && *presented == id0.derive_incarnation(k_prime))
    }

    /// The valid current identifier a peer uses at local time `t`.
    pub fn current_id(&self, id0: &NodeId, t0: f64, t: f64) -> NodeId {
        id0.derive_incarnation(self.incarnation(t0, t))
    }
}

/// The paper's calibration `L = 6.65 · t½` with `t½ = ln 2 / (1 − d)`.
///
/// ```
/// use pollux_overlay::incarnation::lifetime_from_survival;
/// // Figure 5's caption: d = 30% ⇒ L ≈ 6.58, d = 90% ⇒ L ≈ 46.09.
/// assert!((lifetime_from_survival(0.3) - 6.585).abs() < 0.01);
/// assert!((lifetime_from_survival(0.9) - 46.09).abs() < 0.05);
/// ```
pub fn lifetime_from_survival(d: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&d) && d > 0.0,
        "survival probability must lie in (0,1), got {d}"
    );
    LIFETIME_HALFLIFE_FACTOR * std::f64::consts::LN_2 / (1.0 - d)
}

/// Inverse of [`lifetime_from_survival`].
pub fn survival_from_lifetime(l: f64) -> f64 {
    assert!(l > 0.0, "lifetime must be positive, got {l}");
    1.0 - LIFETIME_HALFLIFE_FACTOR * std::f64::consts::LN_2 / l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation() {
        assert!(IncarnationPolicy::new(10.0, 0.0).is_some());
        assert!(IncarnationPolicy::new(0.0, 0.0).is_none());
        assert!(IncarnationPolicy::new(10.0, -1.0).is_none());
        assert!(IncarnationPolicy::new(10.0, 10.0).is_none());
        assert!(IncarnationPolicy::from_survival_probability(0.0, 0.0).is_none());
        assert!(IncarnationPolicy::from_survival_probability(1.0, 0.0).is_none());
    }

    #[test]
    fn incarnation_progression() {
        let p = IncarnationPolicy::new(100.0, 0.0).unwrap();
        assert_eq!(p.incarnation(0.0, 0.0), 1);
        assert_eq!(p.incarnation(0.0, 99.9), 1);
        assert_eq!(p.incarnation(0.0, 100.0), 1); // expires exactly at t0 + L
        assert_eq!(p.incarnation(0.0, 100.1), 2);
        assert_eq!(p.incarnation(0.0, 250.0), 3);
        assert_eq!(p.incarnation(50.0, 140.0), 1);
        // Pre-t0 clamps.
        assert_eq!(p.incarnation(100.0, 0.0), 1);
        assert_eq!(p.expiry(0.0, 2), 200.0);
    }

    #[test]
    fn grace_window_straddles_expiry() {
        let p = IncarnationPolicy::new(100.0, 4.0).unwrap();
        // Far from expiry: both valid incarnations coincide.
        assert_eq!(p.valid_incarnations(0.0, 50.0), (1, 1));
        // Within W/2 of the expiry at t0 + L = 100, both k and k+1 are
        // acceptable: the window is [100 - W/2, 100 + W/2] = [98, 102].
        assert_eq!(p.valid_incarnations(0.0, 97.9), (1, 1));
        assert_eq!(p.valid_incarnations(0.0, 99.0), (1, 2));
        assert_eq!(p.valid_incarnations(0.0, 101.0), (1, 2));
        assert_eq!(p.valid_incarnations(0.0, 102.5), (2, 2));
    }

    #[test]
    fn id_validity_follows_incarnations() {
        let p = IncarnationPolicy::new(100.0, 4.0).unwrap();
        let id0 = NodeId::from_data(b"peer");
        let id_k1 = id0.derive_incarnation(1);
        let id_k2 = id0.derive_incarnation(2);
        assert!(p.is_id_valid(&id0, 0.0, &id_k1, 50.0));
        assert!(!p.is_id_valid(&id0, 0.0, &id_k2, 50.0));
        // Near expiry both pass.
        assert!(p.is_id_valid(&id0, 0.0, &id_k1, 99.0));
        assert!(p.is_id_valid(&id0, 0.0, &id_k2, 99.0));
        // After the window only k+1 passes.
        assert!(!p.is_id_valid(&id0, 0.0, &id_k1, 110.0));
        assert!(p.is_id_valid(&id0, 0.0, &id_k2, 110.0));
        assert_eq!(p.current_id(&id0, 0.0, 150.0), id_k2);
    }

    #[test]
    fn lifetime_calibration_matches_paper_captions() {
        // Figure 5: d = 30% ⇒ L = 6.58; d = 90% ⇒ L = 46.05 (paper rounds).
        assert!((lifetime_from_survival(0.3) - 6.58).abs() < 0.05);
        assert!((lifetime_from_survival(0.9) - 46.05).abs() < 0.1);
        // Round trip.
        for d in [0.1, 0.3, 0.5, 0.9, 0.99] {
            let l = lifetime_from_survival(d);
            assert!((survival_from_lifetime(l) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn ninety_nine_percent_decay_within_lifetime() {
        // With per-unit-time survival d, survival over L units is d^L ≤ 1%.
        for d in [0.3, 0.8, 0.9, 0.99] {
            let l = lifetime_from_survival(d);
            let survive = d.powf(l);
            assert!(survive <= 0.0101, "d={d}: {survive}");
        }
        // The paper's linearization 1 − d ≈ −ln d makes the bound tight
        // only for d near 1.
        for d in [0.9, 0.99] {
            let l = lifetime_from_survival(d);
            assert!(d.powf(l) >= 0.005, "d={d}");
        }
    }
}
