//! Cluster-based structured overlay substrate.
//!
//! This crate implements, from scratch, every overlay-network component the
//! DSN'11 paper *Modeling and Evaluating Targeted Attacks in Large Scale
//! Dynamic Systems* assumes (Sections III and IV):
//!
//! * [`hash`] — SHA-256 (NIST-vector tested) and HMAC-SHA-256, the `H` of
//!   the paper's identifier scheme.
//! * [`NodeId`] / [`Label`] — 256-bit identifiers and the binary prefix
//!   labels of clusters, with the prefix distance `D` of PeerCube-style
//!   overlays.
//! * [`cert`] — X.509-lite certificates issued by a simulated
//!   certification authority; the certified creation time `t0` anchors the
//!   limited-lifetime identifier scheme.
//! * [`incarnation`] — identifier incarnations `k = ⌈(t − t0)/L⌉` with the
//!   grace window `W` (Section III-D, Property 1).
//! * [`Peer`] / [`PeerRegistry`] — the universe `U` of peers, a fraction
//!   `μ` of which is controlled by the adversary.
//! * [`Cluster`] — core/spare role separation with the pollution predicate
//!   `x > c = ⌊(C−1)/3⌋`.
//! * [`ops`] — the four robust operations `join`, `leave` (with the
//!   `k`-randomized core-maintenance procedure of `protocol_k`), `split`
//!   and `merge`.
//! * [`consensus`] — a round-based simulated Byzantine-tolerant agreement
//!   used by the maintenance and split procedures.
//! * [`Overlay`] — the prefix-tree topology: cluster lookup, split/merge
//!   label algebra, hypercube-style neighbours.
//! * [`routing`] — greedy prefix routing with optional redundancy, used to
//!   quantify the impact of polluted clusters on lookups.
//! * [`storage`] — a key–value layer over the topology: the DHT workload
//!   whose availability the attacks degrade.
//!
//! # Example
//!
//! ```
//! use pollux_overlay::{hash, NodeId};
//!
//! let id = NodeId::from_bytes(hash::sha256(b"some peer"));
//! let other = NodeId::from_bytes(hash::sha256(b"other peer"));
//! assert_ne!(id, other);
//! assert!(id.common_prefix_len(&id) == 256);
//! ```

pub mod cert;
mod cluster;
pub mod consensus;
mod error;
pub mod hash;
mod id;
pub mod incarnation;
pub mod ops;
mod peer;
pub mod routing;
pub mod storage;
mod topology;

pub use cluster::{Cluster, ClusterParams, Member};
pub use error::OverlayError;
pub use id::{Label, NodeId};
pub use peer::{Behavior, Peer, PeerId, PeerRegistry};
pub use topology::Overlay;
