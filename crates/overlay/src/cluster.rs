use std::fmt;

use crate::{Label, NodeId, OverlayError, PeerId};

/// Size parameters of every cluster: core size `C` and maximal spare size
/// `Δ = Smax − C`.
///
/// The Byzantine quorum is `c = ⌊(C−1)/3⌋`: a cluster whose core holds more
/// than `c` malicious members is *polluted* (agreement can be subverted).
///
/// # Example
///
/// ```
/// use pollux_overlay::ClusterParams;
///
/// let params = ClusterParams::new(7, 7).unwrap();
/// assert_eq!(params.quorum(), 2);
/// assert_eq!(params.s_max(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterParams {
    core_size: usize,
    max_spare: usize,
}

impl ClusterParams {
    /// Creates parameters with core size `C ≥ 1` and maximal spare size
    /// `Δ ≥ 2`.
    ///
    /// `Δ ≥ 2` keeps the transient band `0 < s < Δ` non-empty, matching the
    /// paper's model.
    ///
    /// Returns `None` on out-of-range values.
    pub fn new(core_size: usize, max_spare: usize) -> Option<Self> {
        if core_size == 0 || max_spare < 2 {
            return None;
        }
        Some(ClusterParams {
            core_size,
            max_spare,
        })
    }

    /// Core size `C`.
    pub fn core_size(&self) -> usize {
        self.core_size
    }

    /// Maximal spare size `Δ`.
    pub fn max_spare(&self) -> usize {
        self.max_spare
    }

    /// Maximal cluster size `Smax = C + Δ`.
    pub fn s_max(&self) -> usize {
        self.core_size + self.max_spare
    }

    /// Byzantine quorum threshold `c = ⌊(C−1)/3⌋`.
    pub fn quorum(&self) -> usize {
        (self.core_size - 1) / 3
    }
}

/// A cluster member: peer handle, behaviour flag and current overlay
/// identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    /// Registry handle of the peer.
    pub peer: PeerId,
    /// `true` when the adversary controls this peer.
    pub malicious: bool,
    /// The identifier the peer currently presents.
    pub id: NodeId,
}

/// A cluster: a labelled vertex of the overlay graph populated by a core
/// set of exactly `C` members and a spare set of at most `Δ` members
/// (Section III-A of the paper).
///
/// Core members run the overlay operations; spare members are passive. The
/// struct enforces the size invariants on every mutation.
#[derive(Clone, PartialEq, Eq)]
pub struct Cluster {
    label: Label,
    params: ClusterParams,
    core: Vec<Member>,
    spare: Vec<Member>,
}

impl Cluster {
    /// Creates a cluster with the given core and spare members.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidCluster`] when the core does not hold
    /// exactly `C` members, the spare exceeds `Δ`, or a peer appears twice.
    pub fn new(
        label: Label,
        params: ClusterParams,
        core: Vec<Member>,
        spare: Vec<Member>,
    ) -> Result<Self, OverlayError> {
        let cluster = Cluster {
            label,
            params,
            core,
            spare,
        };
        cluster.check_invariants()?;
        Ok(cluster)
    }

    /// Validates the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidCluster`] describing the violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), OverlayError> {
        if self.core.len() != self.params.core_size() {
            return Err(OverlayError::InvalidCluster(format!(
                "core holds {} members, expected exactly {}",
                self.core.len(),
                self.params.core_size()
            )));
        }
        if self.spare.len() > self.params.max_spare() {
            return Err(OverlayError::InvalidCluster(format!(
                "spare holds {} members, maximum is {}",
                self.spare.len(),
                self.params.max_spare()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for m in self.core.iter().chain(self.spare.iter()) {
            if !seen.insert(m.peer) {
                return Err(OverlayError::InvalidCluster(format!(
                    "{} appears twice",
                    m.peer
                )));
            }
        }
        Ok(())
    }

    /// The cluster's label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// Size parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Core members.
    pub fn core(&self) -> &[Member] {
        &self.core
    }

    /// Spare members.
    pub fn spare(&self) -> &[Member] {
        &self.spare
    }

    /// Current spare size `s`.
    pub fn spare_size(&self) -> usize {
        self.spare.len()
    }

    /// Number of malicious core members `x`.
    pub fn malicious_core(&self) -> usize {
        self.core.iter().filter(|m| m.malicious).count()
    }

    /// Number of malicious spare members `y`.
    pub fn malicious_spare(&self) -> usize {
        self.spare.iter().filter(|m| m.malicious).count()
    }

    /// The `(s, x, y)` abstraction of the analytical model.
    pub fn sxy(&self) -> (usize, usize, usize) {
        (
            self.spare_size(),
            self.malicious_core(),
            self.malicious_spare(),
        )
    }

    /// `true` when strictly more than `c = ⌊(C−1)/3⌋` core members are
    /// malicious: agreement in the core can be subverted.
    pub fn is_polluted(&self) -> bool {
        self.malicious_core() > self.params.quorum()
    }

    /// `true` when the spare set is empty: the merge precondition.
    pub fn must_merge(&self) -> bool {
        self.spare.is_empty()
    }

    /// `true` when the spare set reached `Δ`: the split precondition.
    pub fn must_split(&self) -> bool {
        self.spare.len() >= self.params.max_spare()
    }

    /// Membership lookup over core and spare.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.position_in_core(peer).is_some() || self.position_in_spare(peer).is_some()
    }

    pub(crate) fn position_in_core(&self, peer: PeerId) -> Option<usize> {
        self.core.iter().position(|m| m.peer == peer)
    }

    pub(crate) fn position_in_spare(&self, peer: PeerId) -> Option<usize> {
        self.spare.iter().position(|m| m.peer == peer)
    }

    /// Adds a member to the spare set.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::PreconditionFailed`] when the spare set is
    /// already full, and [`OverlayError::InvalidCluster`] when the peer is
    /// already a member.
    pub fn push_spare(&mut self, member: Member) -> Result<(), OverlayError> {
        if self.spare.len() >= self.params.max_spare() {
            return Err(OverlayError::PreconditionFailed(format!(
                "spare set of {} is full",
                self.label
            )));
        }
        if self.contains(member.peer) {
            return Err(OverlayError::InvalidCluster(format!(
                "{} is already a member",
                member.peer
            )));
        }
        self.spare.push(member);
        Ok(())
    }

    /// Removes a spare member by handle.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownPeer`] when the peer is not a spare.
    pub fn remove_spare(&mut self, peer: PeerId) -> Result<Member, OverlayError> {
        match self.position_in_spare(peer) {
            Some(i) => Ok(self.spare.swap_remove(i)),
            None => Err(OverlayError::UnknownPeer(format!(
                "{peer} is not in the spare set of {}",
                self.label
            ))),
        }
    }

    /// Direct core/spare mutation handles used by the operation layer (kept
    /// crate-private so external users cannot break invariants).
    pub(crate) fn core_mut(&mut self) -> &mut Vec<Member> {
        &mut self.core
    }

    pub(crate) fn spare_mut(&mut self) -> &mut Vec<Member> {
        &mut self.spare
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (s, x, y) = self.sxy();
        write!(
            f,
            "Cluster({}, C={}, s={s}, x={x}, y={y}{})",
            self.label,
            self.params.core_size(),
            if self.is_polluted() { ", POLLUTED" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn member(i: u64, malicious: bool) -> Member {
        Member {
            peer: PeerId(i),
            malicious,
            id: NodeId::from_data(&i.to_be_bytes()),
        }
    }

    fn params() -> ClusterParams {
        ClusterParams::new(7, 7).unwrap()
    }

    fn cluster(x: usize, spare_m: usize, spare_h: usize) -> Cluster {
        let core: Vec<Member> = (0..7).map(|i| member(i, (i as usize) < x)).collect();
        let spare: Vec<Member> = (0..spare_m + spare_h)
            .map(|i| member(100 + i as u64, i < spare_m))
            .collect();
        Cluster::new(Label::root(), params(), core, spare).unwrap()
    }

    #[test]
    fn params_validation_and_quorum() {
        assert!(ClusterParams::new(0, 7).is_none());
        assert!(ClusterParams::new(7, 1).is_none());
        assert_eq!(ClusterParams::new(4, 4).unwrap().quorum(), 1);
        assert_eq!(ClusterParams::new(7, 7).unwrap().quorum(), 2);
        assert_eq!(ClusterParams::new(10, 7).unwrap().quorum(), 3);
        assert_eq!(ClusterParams::new(7, 7).unwrap().s_max(), 14);
    }

    #[test]
    fn construction_enforces_core_size() {
        let core: Vec<Member> = (0..6).map(|i| member(i, false)).collect();
        assert!(Cluster::new(Label::root(), params(), core, vec![]).is_err());
    }

    #[test]
    fn construction_rejects_duplicates() {
        let mut core: Vec<Member> = (0..7).map(|i| member(i, false)).collect();
        core[6] = member(0, false);
        assert!(Cluster::new(Label::root(), params(), core, vec![]).is_err());
        let core: Vec<Member> = (0..7).map(|i| member(i, false)).collect();
        let spare = vec![member(0, false)];
        assert!(Cluster::new(Label::root(), params(), core, spare).is_err());
    }

    #[test]
    fn construction_rejects_oversized_spare() {
        let core: Vec<Member> = (0..7).map(|i| member(i, false)).collect();
        let spare: Vec<Member> = (0..8).map(|i| member(100 + i, false)).collect();
        assert!(Cluster::new(Label::root(), params(), core, spare).is_err());
    }

    #[test]
    fn pollution_threshold() {
        assert!(!cluster(0, 0, 3).is_polluted());
        assert!(!cluster(2, 0, 3).is_polluted()); // x = c = 2: still safe
        assert!(cluster(3, 0, 3).is_polluted()); // x = c + 1
        assert_eq!(cluster(3, 2, 1).sxy(), (3, 3, 2));
    }

    #[test]
    fn merge_and_split_preconditions() {
        assert!(cluster(0, 0, 0).must_merge());
        assert!(!cluster(0, 0, 1).must_merge());
        let full = cluster(0, 0, 7);
        assert!(full.must_split());
        assert!(!cluster(0, 0, 6).must_split());
    }

    #[test]
    fn spare_push_and_remove() {
        let mut cl = cluster(0, 1, 1);
        assert_eq!(cl.spare_size(), 2);
        cl.push_spare(member(500, true)).unwrap();
        assert_eq!(cl.sxy(), (3, 0, 2));
        // Duplicate rejected.
        assert!(cl.push_spare(member(500, true)).is_err());
        // Core member cannot be re-added as a spare.
        assert!(cl.push_spare(member(0, false)).is_err());
        let removed = cl.remove_spare(PeerId(500)).unwrap();
        assert!(removed.malicious);
        assert!(cl.remove_spare(PeerId(500)).is_err());
        // Fill up to Δ and overflow.
        for i in 0..5 {
            cl.push_spare(member(600 + i, false)).unwrap();
        }
        assert_eq!(cl.spare_size(), 7);
        assert!(cl.push_spare(member(700, false)).is_err());
    }

    #[test]
    fn membership_and_debug() {
        let cl = cluster(1, 1, 0);
        assert!(cl.contains(PeerId(0)));
        assert!(cl.contains(PeerId(100)));
        assert!(!cl.contains(PeerId(999)));
        let dbg = format!("{cl:?}");
        assert!(dbg.contains("s=1"));
        let polluted = cluster(3, 0, 1);
        assert!(format!("{polluted:?}").contains("POLLUTED"));
    }
}
