//! The four robust overlay operations of Section IV: `join`, `leave` (with
//! the `k`-randomized core-maintenance procedure of `protocol_k`), `split`
//! and `merge`.
//!
//! The `leave` operation is the heart of `protocol_k`: when a core member
//! leaves, `k − 1` randomly chosen core members are demoted and `k` peers
//! are drawn uniformly *without replacement* from the whole cluster (the
//! spare set plus the demoted members) to refill the core. The paper's
//! kernel `τ(x, a, b)` is exactly the distribution of the malicious counts
//! produced by this procedure — the property-based tests below check that
//! correspondence empirically.

use rand::RngExt;

use crate::{Cluster, Label, Member, OverlayError, PeerId};

/// What a core-leave maintenance round did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// The member that left the cluster.
    pub left: Member,
    /// Core members demoted to the spare pool (`k − 1` of them).
    pub demoted: Vec<Member>,
    /// Pool members promoted to the core (`k` of them).
    pub promoted: Vec<Member>,
}

/// `join(p)`: the new peer always enters the **spare** set (never the
/// core), which blunts brute-force join floods (Section IV).
///
/// # Errors
///
/// Propagates [`Cluster::push_spare`] failures (full spare set or duplicate
/// membership).
pub fn join(cluster: &mut Cluster, member: Member) -> Result<(), OverlayError> {
    cluster.push_spare(member)
}

/// `leave(p)` for a spare member: the spare view is simply updated.
///
/// # Errors
///
/// Returns [`OverlayError::UnknownPeer`] when `peer` is not a spare.
pub fn leave_spare(cluster: &mut Cluster, peer: PeerId) -> Result<Member, OverlayError> {
    cluster.remove_spare(peer)
}

/// `leave(p)` for a core member under `protocol_k`: the randomized core
/// maintenance procedure.
///
/// Removes `peer` from the core, demotes `k − 1` uniformly chosen remaining
/// core members, then promotes `k` members drawn uniformly without
/// replacement from the pool (spares plus demoted). The spare set shrinks
/// by exactly one; the core keeps size `C`.
///
/// # Errors
///
/// * [`OverlayError::UnknownPeer`] when `peer` is not a core member.
/// * [`OverlayError::PreconditionFailed`] when `k` is outside `1..=C` or
///   the spare set is empty (the cluster must merge instead).
pub fn leave_core_randomized<R: rand::Rng + ?Sized>(
    cluster: &mut Cluster,
    peer: PeerId,
    k: usize,
    rng: &mut R,
) -> Result<MaintenanceReport, OverlayError> {
    let c_size = cluster.params().core_size();
    if k == 0 || k > c_size {
        return Err(OverlayError::PreconditionFailed(format!(
            "randomization amount k={k} outside 1..={c_size}"
        )));
    }
    if cluster.spare_size() == 0 {
        return Err(OverlayError::PreconditionFailed(
            "core leave with empty spare set: cluster must merge".into(),
        ));
    }
    let pos = cluster.position_in_core(peer).ok_or_else(|| {
        OverlayError::UnknownPeer(format!("{peer} is not in the core of {}", cluster.label()))
    })?;

    let left = cluster.core_mut().swap_remove(pos);

    // Demote k-1 uniformly chosen remaining core members.
    let demoted = draw_out(cluster.core_mut(), k - 1, rng);

    // Pool: spares + demoted. Promote k uniformly chosen pool members.
    let mut pool: Vec<Member> = cluster.spare_mut().drain(..).collect();
    pool.extend(demoted.iter().copied());
    let promoted = draw_out(&mut pool, k, rng);
    cluster.core_mut().extend(promoted.iter().copied());
    *cluster.spare_mut() = pool;

    debug_assert!(cluster.check_invariants().is_ok());
    Ok(MaintenanceReport {
        left,
        demoted,
        promoted,
    })
}

/// The adversary-biased maintenance path: when the cluster is polluted, the
/// colluding core replaces the departed member directly with a chosen spare
/// (a valid malicious one if available) instead of running the honest
/// randomized procedure.
///
/// The caller chooses `replacement` (the adversary's pick); this function
/// only enforces structure.
///
/// # Errors
///
/// * [`OverlayError::UnknownPeer`] when `peer` is not in the core or
///   `replacement` is not a spare.
/// * [`OverlayError::PreconditionFailed`] when the spare set is empty.
pub fn leave_core_biased(
    cluster: &mut Cluster,
    peer: PeerId,
    replacement: PeerId,
) -> Result<MaintenanceReport, OverlayError> {
    if cluster.spare_size() == 0 {
        return Err(OverlayError::PreconditionFailed(
            "core leave with empty spare set: cluster must merge".into(),
        ));
    }
    let pos = cluster.position_in_core(peer).ok_or_else(|| {
        OverlayError::UnknownPeer(format!("{peer} is not in the core of {}", cluster.label()))
    })?;
    let rep_pos = cluster.position_in_spare(replacement).ok_or_else(|| {
        OverlayError::UnknownPeer(format!(
            "{replacement} is not in the spare set of {}",
            cluster.label()
        ))
    })?;
    let left = cluster.core_mut().swap_remove(pos);
    let promoted = cluster.spare_mut().swap_remove(rep_pos);
    cluster.core_mut().push(promoted);
    debug_assert!(cluster.check_invariants().is_ok());
    Ok(MaintenanceReport {
        left,
        demoted: vec![],
        promoted: vec![promoted],
    })
}

/// `split(D)`: the cluster divides into the two children of its label.
///
/// Members go to the side their **current identifier** matches (bit at the
/// label depth). On each side, former core members of `D` have priority for
/// the new core; remaining seats are filled with uniformly chosen spares of
/// that side (the random choice the paper runs through Byzantine-tolerant
/// consensus — see [`crate::consensus`]); everyone else becomes a spare.
///
/// # Errors
///
/// * [`OverlayError::PreconditionFailed`] when the spare set has not
///   reached `Δ`, or one side ends up with fewer than `C` members (the
///   split cannot produce two well-formed clusters; the caller should
///   retry after more joins).
pub fn split<R: rand::Rng + ?Sized>(
    cluster: &Cluster,
    rng: &mut R,
) -> Result<(Cluster, Cluster), OverlayError> {
    if !cluster.must_split() {
        return Err(OverlayError::PreconditionFailed(format!(
            "cluster {} has spare size {} < Δ = {}",
            cluster.label(),
            cluster.spare_size(),
            cluster.params().max_spare()
        )));
    }
    let depth = cluster.label().len();
    let (label0, label1) = cluster.label().children();
    let side_of = |m: &Member| usize::from(m.id.bit(depth));

    let mut core_sides: [Vec<Member>; 2] = [Vec::new(), Vec::new()];
    let mut spare_sides: [Vec<Member>; 2] = [Vec::new(), Vec::new()];
    for m in cluster.core() {
        core_sides[side_of(m)].push(*m);
    }
    for m in cluster.spare() {
        spare_sides[side_of(m)].push(*m);
    }

    let c_size = cluster.params().core_size();
    let mut cores: [Vec<Member>; 2] = [Vec::new(), Vec::new()];
    let mut spares: [Vec<Member>; 2] = [Vec::new(), Vec::new()];
    for side in 0..2 {
        let have = core_sides[side].len() + spare_sides[side].len();
        if have < c_size {
            return Err(OverlayError::PreconditionFailed(format!(
                "side {side} of splitting cluster {} holds only {have} members (< C = {c_size})",
                cluster.label()
            )));
        }
        let mut core: Vec<Member> = core_sides[side].clone();
        if core.len() > c_size {
            // More former-core members than seats: keep a uniform subset,
            // demote the rest.
            let keep = draw_out(&mut core, c_size, rng);
            spares[side].extend(core.iter().copied());
            core = keep;
        } else {
            let missing = c_size - core.len();
            let filled = draw_out(&mut spare_sides[side], missing, rng);
            core.extend(filled);
        }
        spares[side].extend(spare_sides[side].iter().copied());
        cores[side] = core;
    }

    let params = *cluster.params();
    let [core0, core1] = cores;
    let [spare0, spare1] = spares;
    let d0 = Cluster::new(label0, params, core0, spare0)?;
    let d1 = Cluster::new(label1, params, core1, spare1)?;
    Ok((d0, d1))
}

/// `merge(D′, D″)`: the dissolving cluster `D′` (whose spare set is empty)
/// merges into the surviving cluster `D″`. The new cluster keeps the
/// **core of `D″`**; its spare set is the union of `D″`'s spares and
/// `D′`'s core members — the construction that makes triggering merges
/// unattractive to the adversary (Section V-B).
///
/// # Errors
///
/// * [`OverlayError::PreconditionFailed`] when `dissolved` still has
///   spares, or the combined spare set would exceed `Δ` (the caller must
///   pick a roomier partner).
pub fn merge(
    new_label: Label,
    survivor: &Cluster,
    dissolved: &Cluster,
) -> Result<Cluster, OverlayError> {
    if !dissolved.must_merge() {
        return Err(OverlayError::PreconditionFailed(format!(
            "cluster {} still has {} spares",
            dissolved.label(),
            dissolved.spare_size()
        )));
    }
    let combined = survivor.spare_size() + dissolved.core().len();
    if combined > survivor.params().max_spare() {
        return Err(OverlayError::PreconditionFailed(format!(
            "merged spare set would hold {combined} > Δ = {} members",
            survivor.params().max_spare()
        )));
    }
    let mut spare = survivor.spare().to_vec();
    spare.extend(dissolved.core().iter().copied());
    Cluster::new(
        new_label,
        *survivor.params(),
        survivor.core().to_vec(),
        spare,
    )
}

/// Removes `count` uniformly chosen elements from `v` (without
/// replacement) and returns them. Order of the remainder is not preserved.
///
/// # Panics
///
/// Panics if `count > v.len()` (internal misuse).
fn draw_out<T: Copy, R: rand::Rng + ?Sized>(v: &mut Vec<T>, count: usize, rng: &mut R) -> Vec<T> {
    assert!(count <= v.len(), "cannot draw {count} from {}", v.len());
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let i = rng.random_range(0..v.len());
        out.push(v.swap_remove(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterParams, NodeId};
    use rand::{rngs::StdRng, SeedableRng};

    fn member(i: u64, malicious: bool) -> Member {
        Member {
            peer: PeerId(i),
            malicious,
            id: NodeId::from_data(&i.to_be_bytes()),
        }
    }

    fn cluster_with(x: usize, y: usize, s: usize) -> Cluster {
        cluster_with_base(0, x, y, s)
    }

    fn cluster_with_base(base: u64, x: usize, y: usize, s: usize) -> Cluster {
        assert!(y <= s);
        let core: Vec<Member> = (0..7).map(|i| member(base + i, (i as usize) < x)).collect();
        let spare: Vec<Member> = (0..s)
            .map(|i| member(base + 100 + i as u64, i < y))
            .collect();
        Cluster::new(
            Label::root(),
            ClusterParams::new(7, 7).unwrap(),
            core,
            spare,
        )
        .unwrap()
    }

    #[test]
    fn join_goes_to_spare() {
        let mut cl = cluster_with(0, 0, 2);
        join(&mut cl, member(500, true)).unwrap();
        assert_eq!(cl.sxy(), (3, 0, 1));
        assert_eq!(cl.core().len(), 7);
    }

    #[test]
    fn leave_spare_updates_counts() {
        let mut cl = cluster_with(0, 1, 3);
        let m = leave_spare(&mut cl, PeerId(100)).unwrap();
        assert!(m.malicious);
        assert_eq!(cl.sxy(), (2, 0, 0));
        assert!(leave_spare(&mut cl, PeerId(0)).is_err()); // core member
    }

    #[test]
    fn core_leave_k1_preserves_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cl = cluster_with(2, 1, 4);
        let report = leave_core_randomized(&mut cl, PeerId(0), 1, &mut rng).unwrap();
        assert_eq!(report.left.peer, PeerId(0));
        assert!(report.demoted.is_empty());
        assert_eq!(report.promoted.len(), 1);
        assert_eq!(cl.core().len(), 7);
        assert_eq!(cl.spare_size(), 3);
        assert!(cl.check_invariants().is_ok());
        assert!(!cl.contains(PeerId(0)));
    }

    #[test]
    fn core_leave_k7_full_reshuffle() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cl = cluster_with(3, 2, 5);
        let report = leave_core_randomized(&mut cl, PeerId(1), 7, &mut rng).unwrap();
        assert_eq!(report.demoted.len(), 6);
        assert_eq!(report.promoted.len(), 7);
        assert_eq!(cl.core().len(), 7);
        assert_eq!(cl.spare_size(), 4);
        // Total malicious count is preserved minus the leaver.
        let (_, x, y) = cl.sxy();
        assert_eq!(x + y, 3 + 2 - 1);
    }

    #[test]
    fn core_leave_preconditions() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cl = cluster_with(0, 0, 0);
        assert!(matches!(
            leave_core_randomized(&mut cl, PeerId(0), 1, &mut rng),
            Err(OverlayError::PreconditionFailed(_))
        ));
        let mut cl = cluster_with(0, 0, 3);
        assert!(leave_core_randomized(&mut cl, PeerId(0), 0, &mut rng).is_err());
        assert!(leave_core_randomized(&mut cl, PeerId(0), 8, &mut rng).is_err());
        assert!(leave_core_randomized(&mut cl, PeerId(100), 1, &mut rng).is_err());
    }

    #[test]
    fn biased_leave_promotes_chosen_spare() {
        let mut cl = cluster_with(3, 1, 3);
        // Adversary replaces departing malicious core member with the
        // malicious spare 100.
        let report = leave_core_biased(&mut cl, PeerId(0), PeerId(100)).unwrap();
        assert_eq!(report.promoted[0].peer, PeerId(100));
        let (s, x, y) = cl.sxy();
        assert_eq!((s, x, y), (2, 3, 0));
        // Errors.
        assert!(leave_core_biased(&mut cl, PeerId(999), PeerId(101)).is_err());
        assert!(leave_core_biased(&mut cl, PeerId(1), PeerId(999)).is_err());
        let mut empty = cluster_with(0, 0, 0);
        assert!(leave_core_biased(&mut empty, PeerId(0), PeerId(1)).is_err());
    }

    #[test]
    fn maintenance_matches_hypergeometric_kernel() {
        // Empirical check of the tau(x, a, b) correspondence for k = 3:
        // P(new core has x' malicious) must match
        // sum_{a,b: x-1-a+b = x'} q(k-1, C-1, a, x-1) q(k, s+k-1, b, y+a)
        // for a *malicious* core leave (x=3 -> core keeps 2 before refill).
        use pollux_prob::hypergeometric_q;
        let k = 3usize;
        let (x, y, s) = (3usize, 2usize, 4usize);
        let mut rng = StdRng::seed_from_u64(42);
        let reps = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..reps {
            let mut cl = cluster_with(x, y, s);
            // PeerId(0) is malicious (i < x).
            leave_core_randomized(&mut cl, PeerId(0), k, &mut rng).unwrap();
            *counts.entry(cl.malicious_core()).or_insert(0usize) += 1;
        }
        for x_new in 0..=7usize {
            let mut want = 0.0;
            for a in 0..=(k - 1) as u64 {
                for b in 0..=k as u64 {
                    let from = (x - 1) as i64 - a as i64 + b as i64;
                    if from == x_new as i64 {
                        want += hypergeometric_q(k as u64 - 1, 6, a, (x - 1) as u64)
                            * hypergeometric_q(k as u64, (s + k - 1) as u64, b, y as u64 + a);
                    }
                }
            }
            let got = *counts.get(&x_new).unwrap_or(&0) as f64 / reps as f64;
            assert!(
                (got - want).abs() < 0.01,
                "x'={x_new}: empirical {got} vs tau {want}"
            );
        }
    }

    #[test]
    fn split_requires_full_spare() {
        let mut rng = StdRng::seed_from_u64(4);
        let cl = cluster_with(0, 0, 3);
        assert!(split(&cl, &mut rng).is_err());
    }

    #[test]
    fn split_partitions_members_by_bit() {
        let mut rng = StdRng::seed_from_u64(5);
        // Build a big cluster with C=3, Δ=8 so both sides get enough
        // members with high probability under hashed ids.
        let params = ClusterParams::new(3, 8).unwrap();
        let core: Vec<Member> = (0..3).map(|i| member(i, false)).collect();
        let spare: Vec<Member> = (0..8).map(|i| member(100 + i, i % 2 == 0)).collect();
        let cl = Cluster::new(Label::root(), params, core, spare).unwrap();
        match split(&cl, &mut rng) {
            Ok((d0, d1)) => {
                assert_eq!(d0.label().to_string(), "0");
                assert_eq!(d1.label().to_string(), "1");
                // Every member sits on the side its id prescribes.
                for (side, cl) in [(false, &d0), (true, &d1)] {
                    for m in cl.core().iter().chain(cl.spare()) {
                        assert_eq!(m.id.bit(0), side);
                    }
                    assert_eq!(cl.core().len(), 3);
                    assert!(cl.check_invariants().is_ok());
                }
                // Conservation of members.
                let total = d0.core().len() + d0.spare_size() + d1.core().len() + d1.spare_size();
                assert_eq!(total, 11);
            }
            Err(OverlayError::PreconditionFailed(_)) => {
                // Acceptable when the hash split is too unbalanced; the
                // operation must fail rather than build an invalid cluster.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn split_prioritizes_former_core_members() {
        let mut rng = StdRng::seed_from_u64(6);
        // Find member ids whose first bit is 0 / 1 to build a controlled
        // cluster: core members all on side 0.
        let mut side0 = Vec::new();
        let mut side1 = Vec::new();
        for i in 0..200u64 {
            let m = member(i, false);
            if m.id.bit(0) {
                side1.push(m);
            } else {
                side0.push(m);
            }
        }
        let params = ClusterParams::new(2, 6).unwrap();
        let core = vec![side0[0], side0[1]];
        let spare = vec![side0[2], side0[3], side1[0], side1[1], side1[2], side1[3]];
        let cl = Cluster::new(Label::root(), params, core.clone(), spare).unwrap();
        let (d0, _d1) = split(&cl, &mut rng).unwrap();
        // Both former core members live on side 0 and must keep their seat.
        for m in &core {
            assert!(d0.core().iter().any(|c| c.peer == m.peer));
        }
    }

    #[test]
    fn merge_moves_dissolved_core_to_spare() {
        let survivor = cluster_with(1, 0, 0); // empty spare: room for 7
        let dissolved = cluster_with_base(1000, 2, 0, 0);
        let merged = merge(Label::root(), &survivor, &dissolved).unwrap();
        assert_eq!(merged.core().len(), 7);
        // Survivor core kept its seats.
        for m in survivor.core() {
            assert!(merged.core().iter().any(|c| c.peer == m.peer));
        }
        assert_eq!(merged.spare_size(), 7);
        assert_eq!(merged.malicious_core(), 1);
        assert_eq!(merged.malicious_spare(), 2);
    }

    #[test]
    fn merge_preconditions() {
        let survivor = cluster_with(0, 0, 3);
        let with_spares = cluster_with(0, 0, 1);
        assert!(merge(Label::root(), &survivor, &with_spares).is_err());
        // Overflow: survivor already has 3 spares, dissolved core adds 7.
        let dissolved = cluster_with_base(1000, 0, 0, 0);
        assert!(merge(Label::root(), &survivor, &dissolved).is_err());
    }

    #[test]
    fn draw_out_is_uniform_without_replacement() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = [0usize; 5];
        for _ in 0..50_000 {
            let mut v = vec![0usize, 1, 2, 3, 4];
            for d in draw_out(&mut v, 2, &mut rng) {
                hits[d] += 1;
            }
        }
        // Each element appears in the draw with probability 2/5.
        for (i, &h) in hits.iter().enumerate() {
            let freq = h as f64 / 50_000.0;
            assert!((freq - 0.4).abs() < 0.02, "element {i}: {freq}");
        }
    }
}
