//! Property-based tests for the overlay substrate: identifier/label
//! algebra, hash behaviour, cluster operations and topology invariants.

use proptest::prelude::*;

use pollux_overlay::{ops, Cluster, ClusterParams, Label, Member, NodeId, PeerId};
use rand::{rngs::StdRng, SeedableRng};

fn arb_id() -> impl Strategy<Value = NodeId> {
    proptest::collection::vec(any::<u8>(), 32).prop_map(|v| {
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&v);
        NodeId::from_bytes(bytes)
    })
}

fn arb_label() -> impl Strategy<Value = Label> {
    proptest::collection::vec(any::<bool>(), 0..20).prop_map(Label::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn common_prefix_is_symmetric_and_bounded(a in arb_id(), b in arb_id()) {
        let ab = a.common_prefix_len(&b);
        prop_assert_eq!(ab, b.common_prefix_len(&a));
        prop_assert!(ab <= 256);
        if ab < 256 {
            prop_assert_ne!(a.bit(ab), b.bit(ab));
            for i in 0..ab {
                prop_assert_eq!(a.bit(i), b.bit(i));
            }
        }
    }

    #[test]
    fn xor_distance_identity_and_symmetry(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(a.xor_distance(&a), NodeId::from_bytes([0u8; 32]));
        prop_assert_eq!(a.xor_distance(&b), b.xor_distance(&a));
    }

    #[test]
    fn incarnation_derivation_is_injective_in_practice(a in arb_id(), k1 in 0u64..1000, k2 in 0u64..1000) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(a.derive_incarnation(k1), a.derive_incarnation(k2));
    }

    #[test]
    fn label_parse_display_roundtrip(label in arb_label()) {
        if label.is_empty() {
            prop_assert_eq!(label.to_string(), "ε");
        } else {
            let s = label.to_string();
            prop_assert_eq!(Label::parse(&s).unwrap(), label);
        }
    }

    #[test]
    fn label_tree_algebra(label in arb_label()) {
        let (zero, one) = label.children();
        prop_assert_eq!(zero.parent().unwrap(), label.clone());
        prop_assert_eq!(one.parent().unwrap(), label.clone());
        prop_assert_eq!(zero.sibling().unwrap(), one.clone());
        prop_assert_eq!(one.sibling().unwrap(), zero.clone());
        prop_assert!(label.is_prefix_of_label(&zero));
        prop_assert!(label.is_prefix_of_label(&one));
        prop_assert!(!zero.is_prefix_of_label(&one));
    }

    #[test]
    fn label_prefix_of_id_consistency(id in arb_id(), depth in 0usize..40) {
        let label = Label::prefix_of_id(&id, depth);
        prop_assert_eq!(label.len(), depth);
        prop_assert!(label.is_prefix_of(&id));
        prop_assert_eq!(label.common_prefix_with_id(&id), depth);
        if depth > 0 {
            let flipped = label.flip_bit(depth - 1);
            prop_assert!(!flipped.is_prefix_of(&id));
        }
    }

    #[test]
    fn exactly_one_child_prefixes_an_id(id in arb_id(), depth in 0usize..30) {
        let label = Label::prefix_of_id(&id, depth);
        let (zero, one) = label.children();
        prop_assert!(zero.is_prefix_of(&id) ^ one.is_prefix_of(&id));
    }

    #[test]
    fn maintenance_conserves_members(
        x in 0usize..=7,
        y_frac in 0.0f64..=1.0,
        s in 1usize..=7,
        k in 1usize..=7,
        seed in any::<u64>(),
    ) {
        let y = ((s as f64) * y_frac) as usize;
        let params = ClusterParams::new(7, 7).unwrap();
        let member = |i: u64, m: bool| Member {
            peer: PeerId(i),
            malicious: m,
            id: NodeId::from_data(&i.to_be_bytes()),
        };
        let core: Vec<Member> = (0..7).map(|i| member(i, (i as usize) < x)).collect();
        let spare: Vec<Member> = (0..s).map(|i| member(100 + i as u64, i < y)).collect();
        let mut cluster = Cluster::new(Label::root(), params, core, spare).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        // Pick any core member to leave.
        let leaver = cluster.core()[0].peer;
        let was_malicious = cluster.core()[0].malicious;
        let report = ops::leave_core_randomized(&mut cluster, leaver, k, &mut rng).unwrap();
        prop_assert_eq!(report.left.peer, leaver);
        prop_assert_eq!(report.demoted.len(), k - 1);
        prop_assert_eq!(report.promoted.len(), k);
        // Structure restored.
        prop_assert_eq!(cluster.core().len(), 7);
        prop_assert_eq!(cluster.spare_size(), s - 1);
        prop_assert!(cluster.check_invariants().is_ok());
        prop_assert!(!cluster.contains(leaver));
        // Malicious count conserved minus the leaver.
        let (_, nx, ny) = cluster.sxy();
        prop_assert_eq!(nx + ny + usize::from(was_malicious), x + y);
    }

    #[test]
    fn join_then_leave_is_identity_on_counts(
        s in 0usize..6,
        malicious in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let params = ClusterParams::new(4, 6).unwrap();
        let member = |i: u64, m: bool| Member {
            peer: PeerId(i),
            malicious: m,
            id: NodeId::from_data(&i.to_be_bytes()),
        };
        let core: Vec<Member> = (0..4).map(|i| member(i, false)).collect();
        let spare: Vec<Member> = (0..s).map(|i| member(100 + i as u64, false)).collect();
        let mut cluster = Cluster::new(Label::root(), params, core, spare).unwrap();
        let before = cluster.sxy();
        let _ = seed;
        ops::join(&mut cluster, member(999, malicious)).unwrap();
        let (s1, x1, y1) = cluster.sxy();
        prop_assert_eq!(s1, before.0 + 1);
        prop_assert_eq!(x1, before.1);
        prop_assert_eq!(y1, before.2 + usize::from(malicious));
        ops::leave_spare(&mut cluster, PeerId(999)).unwrap();
        prop_assert_eq!(cluster.sxy(), before);
    }

    #[test]
    fn sha256_is_deterministic_and_length_sensitive(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        use pollux_overlay::hash::sha256;
        prop_assert_eq!(sha256(&data), sha256(&data));
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(sha256(&data), sha256(&extended));
    }
}
