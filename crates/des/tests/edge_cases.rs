//! Edge-case tests for the discrete-event engine: timestamp ties through
//! the full simulation loop, `stop()` semantics mid-dispatch, empty-queue
//! termination, queue pre-sizing, and long-horizon churn balance.

use pollux_des::churn::{ChurnKind, EventMix, PoissonProcess};
use pollux_des::{EventHandler, EventQueue, Scheduler, SimTime, Simulation};
use rand::{rngs::StdRng, SeedableRng};

/// Records the payload order of every dispatched event.
struct Tape {
    seen: Vec<u32>,
}

impl EventHandler for Tape {
    type Event = u32;
    fn handle(&mut self, _t: SimTime, ev: u32, _sched: &mut Scheduler<u32>) {
        self.seen.push(ev);
    }
}

#[test]
fn simultaneous_events_dispatch_in_schedule_order() {
    // Many events at the same SimTime must reach the handler in exactly
    // the order they were scheduled (deterministic FIFO tie-break), even
    // interleaved with earlier and later timestamps.
    let mut sim = Simulation::new(Tape { seen: vec![] });
    for i in 0..50 {
        sim.schedule(SimTime::from(5.0), i);
    }
    sim.schedule(SimTime::from(1.0), 1000);
    sim.schedule(SimTime::from(9.0), 2000);
    sim.run();
    let expect: Vec<u32> = std::iter::once(1000)
        .chain(0..50)
        .chain(std::iter::once(2000))
        .collect();
    assert_eq!(sim.handler().seen, expect);
    assert_eq!(sim.now(), SimTime::from(9.0));
}

#[test]
fn ties_scheduled_from_within_a_handler_stay_fifo() {
    // A handler scheduling at its *own* timestamp enqueues behind every
    // event already pending at that timestamp.
    struct Spawner {
        seen: Vec<u32>,
    }
    impl EventHandler for Spawner {
        type Event = u32;
        fn handle(&mut self, t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push(ev);
            if ev == 0 {
                sched.schedule(t, 10); // same instant, goes last
            }
        }
    }
    let mut sim = Simulation::new(Spawner { seen: vec![] });
    sim.schedule(SimTime::from(2.0), 0);
    sim.schedule(SimTime::from(2.0), 1);
    sim.run();
    assert_eq!(sim.handler().seen, vec![0, 1, 10]);
}

/// Stops after `limit` events; keeps rescheduling itself forever.
struct StopAfter {
    count: u64,
    limit: u64,
}

impl EventHandler for StopAfter {
    type Event = ();
    fn handle(&mut self, _t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
        self.count += 1;
        sched.schedule_in(1.0, ());
        sched.schedule_in(1.0, ());
        if self.count >= self.limit {
            sched.stop();
        }
    }
}

#[test]
fn stop_mid_dispatch_halts_after_current_event_and_preserves_queue() {
    let mut sim = Simulation::new(StopAfter { count: 0, limit: 3 });
    sim.schedule(SimTime::ZERO, ());
    let processed = sim.run();
    // The stop request takes effect after the current event: exactly 3
    // dispatches, every event the handlers scheduled still pending.
    assert_eq!(processed, 3);
    assert_eq!(sim.handler().count, 3);
    assert!(sim.pending() > 0, "stop() must not drain the queue");
    // The simulation is resumable: a fresh run() picks the queue back up.
    let before = sim.pending();
    sim.run_events(1);
    assert_eq!(sim.handler().count, 4);
    assert_eq!(sim.pending(), before + 1); // one popped, two scheduled
}

#[test]
fn stop_requested_on_final_queue_entry_terminates_cleanly() {
    struct OneShotStop;
    impl EventHandler for OneShotStop {
        type Event = ();
        fn handle(&mut self, _t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
            sched.stop();
        }
    }
    let mut sim = Simulation::new(OneShotStop);
    sim.schedule(SimTime::ZERO, ());
    assert_eq!(sim.run(), 1);
    assert_eq!(sim.pending(), 0);
    // Queue now empty: further runs are no-ops, not hangs or panics.
    assert_eq!(sim.run(), 0);
    assert_eq!(sim.run_events(10), 0);
    assert_eq!(sim.run_until(SimTime::from(1e9)), 0);
}

#[test]
fn empty_queue_terminates_without_touching_the_clock() {
    let mut sim = Simulation::new(Tape { seen: vec![] });
    assert_eq!(sim.run(), 0);
    assert_eq!(sim.now(), SimTime::ZERO);
    assert!(!sim.step());
    assert_eq!(sim.processed(), 0);
    // run_until on an empty queue is likewise a no-op.
    assert_eq!(sim.run_until(SimTime::from(100.0)), 0);
    assert_eq!(sim.now(), SimTime::ZERO);
}

#[test]
fn drained_queue_ends_the_run_even_at_equal_horizon() {
    // One event exactly at the horizon: it runs, then the empty queue
    // (not the horizon test) terminates the loop.
    let mut sim = Simulation::new(Tape { seen: vec![] });
    sim.schedule(SimTime::from(4.0), 7);
    assert_eq!(sim.run_until(SimTime::from(4.0)), 1);
    assert_eq!(sim.handler().seen, vec![7]);
    assert_eq!(sim.pending(), 0);
}

#[test]
fn presized_queue_never_reallocates_within_capacity() {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
    let cap = q.capacity();
    assert!(cap >= 1024);
    for i in 0..1024 {
        q.push(SimTime::from(f64::from(i % 17)), i as u32);
    }
    assert_eq!(q.capacity(), cap, "pushes within capacity must not grow");
    while q.pop().is_some() {}
    assert_eq!(q.capacity(), cap, "pops must not shrink");
    q.reserve(2048);
    assert!(q.capacity() >= 2048);
}

/// A churn-driven handler: one Poisson arrival stream, each arrival flips
/// the join/leave coin and maintains a population counter.
struct ChurnCounter {
    rng: StdRng,
    process: PoissonProcess,
    mix: EventMix,
    joins: u64,
    leaves: u64,
    population: i64,
    min_population: i64,
    max_population: i64,
    horizon: SimTime,
}

impl EventHandler for ChurnCounter {
    type Event = ();
    fn handle(&mut self, t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
        match self.mix.sample(&mut self.rng) {
            ChurnKind::Join => {
                self.joins += 1;
                self.population += 1;
            }
            ChurnKind::Leave => {
                self.leaves += 1;
                self.population -= 1;
            }
        }
        self.min_population = self.min_population.min(self.population);
        self.max_population = self.max_population.max(self.population);
        let next = self.process.next_after(t, &mut self.rng);
        if next <= self.horizon {
            sched.schedule(next, ());
        }
    }
}

#[test]
fn churn_arrivals_and_departures_balance_over_long_horizons() {
    // A balanced mix over a long horizon: the arrival count concentrates
    // around rate * horizon and the join/leave split around 1/2 (both
    // within 5 sigma), so the population drift stays O(sqrt(events)).
    let horizon = 50_000.0;
    let rate = 2.0;
    let mut sim = Simulation::new(ChurnCounter {
        rng: StdRng::seed_from_u64(2024),
        process: PoissonProcess::new(rate).unwrap(),
        mix: EventMix::balanced(),
        joins: 0,
        leaves: 0,
        population: 0,
        min_population: 0,
        max_population: 0,
        horizon: SimTime::from(horizon),
    });
    sim.schedule(SimTime::ZERO, ());
    sim.run();

    let h = sim.handler();
    let events = (h.joins + h.leaves) as f64;
    let expected = rate * horizon;
    assert!(
        (events - expected).abs() < 5.0 * expected.sqrt(),
        "arrival count {events} vs expected {expected}"
    );
    let drift = (h.joins as i64 - h.leaves as i64).unsigned_abs() as f64;
    assert!(
        drift < 5.0 * (events * 0.25).sqrt(),
        "join/leave imbalance {drift} over {events} events"
    );
    // The recorded extremes bound every intermediate population value.
    assert!(h.min_population <= 0 && h.max_population >= 0);
    assert!(sim.now() <= SimTime::from(horizon));
    assert!(sim.pending() == 0, "horizon filter leaves no stragglers");
}

#[test]
fn biased_mix_drifts_in_the_biased_direction() {
    let mut sim = Simulation::new(ChurnCounter {
        rng: StdRng::seed_from_u64(7),
        process: PoissonProcess::new(1.0).unwrap(),
        mix: EventMix::with_join_probability(0.75).unwrap(),
        joins: 0,
        leaves: 0,
        population: 0,
        min_population: 0,
        max_population: 0,
        horizon: SimTime::from(20_000.0),
    });
    sim.schedule(SimTime::ZERO, ());
    sim.run();
    let h = sim.handler();
    let frac = h.joins as f64 / (h.joins + h.leaves) as f64;
    assert!((frac - 0.75).abs() < 0.02, "join fraction {frac}");
    assert!(h.population > 0, "3:1 join bias must grow the population");
}
