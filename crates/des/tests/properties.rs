//! Property-based tests for the discrete-event engine.

use proptest::prelude::*;

use pollux_des::stats::Welford;
use pollux_des::{CalendarQueue, EventQueue, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_pops_sorted_with_fifo_ties(times in proptest::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from(t as f64), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn queue_interleaved_operations_never_go_backwards(
        script in proptest::collection::vec((any::<bool>(), 0u32..100), 1..300),
    ) {
        let mut q = EventQueue::new();
        let mut last_popped: Option<SimTime> = None;
        let mut pending_max = 0u32;
        for (push, t) in script {
            if push {
                // Keep times non-decreasing relative to what was popped so
                // the scenario is a legal simulation schedule.
                let t = t.max(last_popped.map(|lt| lt.value() as u32).unwrap_or(0));
                pending_max = pending_max.max(t);
                q.push(SimTime::from(t as f64), ());
            } else if let Some((t, ())) = q.pop() {
                if let Some(lp) = last_popped {
                    prop_assert!(t >= lp, "pop went backwards");
                }
                last_popped = Some(t);
            }
        }
    }

    #[test]
    fn calendar_queue_matches_heap_dispatch_order(
        // (op, coarse time) scripts: op 0-1 push, 2 pop, 3 replace_earliest.
        // Coarse times force many exact ties, so FIFO tie order is
        // exercised hard; wide times exercise bucket resizes and the
        // far-future fallback.
        script in proptest::collection::vec((0u8..4, 0u32..24), 1..400),
        profile_n in 1usize..64,
        rate in 0.1f64..4.0,
    ) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_profile(profile_n, rate);
        for (i, &(op, t)) in script.iter().enumerate() {
            let t = SimTime::from(t as f64);
            match op {
                0 | 1 => {
                    heap.push(t, i);
                    cal.push(t, i);
                }
                2 => prop_assert_eq!(heap.pop(), cal.pop()),
                _ => {
                    // The fused operation must agree including its return
                    // value and the FIFO seq it assigns the replacement.
                    let a = heap.replace_earliest(t, i + 10_000);
                    let b = cal.replace_earliest(t, i + 10_000);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
        }
        // Full drains agree event by event.
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_queue_survives_fractional_times_and_resizes(
        times in proptest::collection::vec(0.0f64..1e4, 1..500),
    ) {
        // Pure push-then-drain with continuous times: the calendar's
        // resizing/width re-estimation must never reorder dispatch.
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        for (i, &t) in times.iter().enumerate() {
            heap.push(SimTime::from(t), i);
            cal.push(SimTime::from(t), i);
        }
        let h: Vec<_> = std::iter::from_fn(|| heap.pop()).collect();
        let c: Vec<_> = std::iter::from_fn(|| cal.pop()).collect();
        prop_assert_eq!(h, c);
    }

    #[test]
    fn welford_matches_two_pass(data in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.sample_variance() - var).abs() < 1e-6 * (1.0 + var));
    }

    #[test]
    fn welford_merge_any_split_point(data in proptest::collection::vec(-50.0f64..50.0, 2..100), split_frac in 0.0f64..=1.0) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let split = split.min(data.len());
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        for &x in &data[..split] {
            left.push(x);
        }
        let mut right = Welford::new();
        for &x in &data[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    #[test]
    fn replication_seeds_unique(master in any::<u64>()) {
        use pollux_des::replication::replication_seed;
        let seeds: std::collections::HashSet<u64> =
            (0..256).map(|i| replication_seed(master, i)).collect();
        prop_assert_eq!(seeds.len(), 256);
    }
}
