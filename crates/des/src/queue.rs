use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// The future-event list: a priority queue ordered by timestamp with FIFO
/// tie-breaking (events scheduled earlier pop first at equal times), which
/// keeps simulations deterministic for a fixed seed.
///
/// # Example
///
/// ```
/// use pollux_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from(2.0), "b");
/// q.push(SimTime::from(1.0), "a");
/// q.push(SimTime::from(2.0), "c");
/// assert_eq!(q.pop(), Some((SimTime::from(1.0), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from(2.0), "b"))); // FIFO tie-break
/// assert_eq!(q.pop(), Some((SimTime::from(2.0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earlier time (then smaller
        // seq) is "greater".
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue whose backing heap holds `capacity` events
    /// without reallocating.
    ///
    /// Large-scale simulations (one pending arrival per simulated cluster)
    /// pre-size the future-event list once so the hot loop never touches
    /// the allocator.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Reserves room for at least `additional` further events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for (t, e) in [(5.0, 'e'), (1.0, 'a'), (3.0, 'c')] {
            q.push(SimTime::from(t), e);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'c', 'e']);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from(2.0), ());
        q.push(SimTime::from(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from(1.0)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from(1.0), 1);
        q.push(SimTime::from(3.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
