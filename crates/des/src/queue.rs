use crate::SimTime;

/// The future-event list: a priority queue ordered by timestamp with FIFO
/// tie-breaking (events scheduled earlier pop first at equal times), which
/// keeps simulations deterministic for a fixed seed.
///
/// Internally an **index-based 4-ary min-heap** over a flat `Vec`: for the
/// exponential inter-arrival workloads the simulators generate, a freshly
/// scheduled event usually lands near the *back* of the time order, so the
/// dominant cost is the `pop` sift-down. A 4-ary layout halves the sift
/// depth of the classical binary heap (`log₄ n` levels instead of
/// `log₂ n`) and keeps each level's four candidate children on one or two
/// cache lines, trading a few extra comparisons per level for roughly half
/// the dependent cache misses — a measurable win once the pending-event
/// set outgrows L1 (the whole-overlay simulations keep one pending arrival
/// per cluster, i.e. 10⁴–10⁵ entries).
///
/// # Example
///
/// ```
/// use pollux_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from(2.0), "b");
/// q.push(SimTime::from(1.0), "a");
/// q.push(SimTime::from(2.0), "c");
/// assert_eq!(q.pop(), Some((SimTime::from(1.0), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from(2.0), "b"))); // FIFO tie-break
/// assert_eq!(q.pop(), Some((SimTime::from(2.0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// 4-ary heap: children of slot `i` live at `4i + 1 ..= 4i + 4`.
    heap: Vec<Entry<E>>,
    next_seq: u64,
}

/// Heap arity. Four keeps sift depth at `log₄ n` while a whole level of
/// children (4 × 24-byte entries for a `u32` payload) still spans at most
/// two cache lines.
const ARITY: usize = 4;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Strict `(time, seq)` ordering: the min-heap key.
    #[inline]
    fn before(&self, other: &Self) -> bool {
        match self.time.cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue whose backing storage holds `capacity` events
    /// without reallocating.
    ///
    /// Large-scale simulations (one pending arrival per simulated cluster)
    /// pre-size the future-event list once so the hot loop never touches
    /// the allocator.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Number of events the queue can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Exact byte size of one heap entry for this payload type — the
    /// memory-accounting unit (the backing allocation is
    /// `capacity() * entry_bytes()` bytes).
    #[must_use]
    pub const fn entry_bytes() -> usize {
        std::mem::size_of::<Entry<E>>()
    }

    /// Bytes of the heap's backing allocation.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.heap.capacity() * Self::entry_bytes()
    }

    /// Reserves room for at least `additional` further events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event.
    #[must_use = "popping discards the event unless the result is consumed"]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("length checked above");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// The earliest pending event, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.first().map(|e| (e.time, &e.event))
    }

    /// The events that could become the earliest once the root leaves:
    /// the root's direct children in the 4-ary layout (up to four, in
    /// heap order, *not* sorted). Simulation hot loops use this as a
    /// prefetch hint — the next event to fire is almost always one of
    /// these or the root's own replacement — so the memory latency of
    /// the next event's state can overlap with processing the current
    /// one.
    pub fn runners_up(&self) -> impl Iterator<Item = &E> {
        let end = self.heap.len().min(1 + ARITY);
        self.heap
            .get(1..end)
            .unwrap_or(&[])
            .iter()
            .map(|e| &e.event)
    }

    /// Removes and returns the earliest event while scheduling `event` at
    /// `time` in its place — the fused form of a pop followed by a push.
    ///
    /// This is the dominant operation of a simulation whose handlers
    /// reschedule the entity they just processed (one pending arrival per
    /// cluster): replacing the root costs a single sift-down instead of a
    /// sift-down *and* a sift-up, halving the heap work per event. The
    /// replacement takes the next FIFO sequence number, exactly as a
    /// `push` would.
    ///
    /// Returns `None` (after scheduling `event` as a plain push) when the
    /// queue was empty.
    pub fn replace_earliest(&mut self, time: SimTime, event: E) -> Option<(SimTime, E)> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        match self.heap.first_mut() {
            None => {
                self.heap.push(entry);
                None
            }
            Some(root) => {
                let old = std::mem::replace(root, entry);
                self.sift_down(0);
                Some((old.time, old.event))
            }
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, **keeping the backing allocation** so a
    /// reused queue (the per-shard queues of a sweep running many DES
    /// cells, say) does not re-allocate on its next fill. Call
    /// [`EventQueue::shrink_to_fit`] afterwards to actually return the
    /// memory.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Releases backing capacity down to the current length, so a cleared
    /// or drained queue stops holding its peak-size allocation.
    pub fn shrink_to_fit(&mut self) {
        self.heap.shrink_to_fit();
    }

    /// Restores the heap invariant upward from `pos` (after a push).
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.heap[pos].before(&self.heap[parent]) {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap invariant downward from `pos` (after a pop).
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= len {
                break;
            }
            // Smallest of the (up to four) children.
            let mut best = first_child;
            let last_child = (first_child + ARITY).min(len);
            for child in first_child + 1..last_child {
                if self.heap[child].before(&self.heap[best]) {
                    best = child;
                }
            }
            if self.heap[best].before(&self.heap[pos]) {
                self.heap.swap(pos, best);
                pos = best;
            } else {
                break;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for (t, e) in [(5.0, 'e'), (1.0, 'a'), (3.0, 'c')] {
            q.push(SimTime::from(t), e);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'c', 'e']);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_ties_survive_interleaved_distinct_times() {
        // Ties scheduled around other timestamps must still pop in
        // scheduling order — the exact semantics the old BinaryHeap
        // (time, then sequence) ordering provided.
        let mut q = EventQueue::new();
        q.push(SimTime::from(2.0), "tie-1");
        q.push(SimTime::from(1.0), "early");
        q.push(SimTime::from(2.0), "tie-2");
        q.push(SimTime::from(3.0), "late");
        q.push(SimTime::from(2.0), "tie-3");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early", "tie-1", "tie-2", "tie-3", "late"]);
    }

    #[test]
    fn matches_reference_sort_on_adversarial_sequences() {
        // Deterministic pseudo-random push/pop mix, checked against a
        // stable sort on (time, insertion index) — the queue's contract.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut popped: Vec<usize> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in 0..2000usize {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Coarse times force plenty of exact ties.
            let t = state >> 59;
            q.push(SimTime::from(t as f64), i);
            reference.push((t, i));
            if state.is_multiple_of(3) {
                popped.push(q.pop().expect("nonempty").1);
            }
        }
        while let Some((_, e)) = q.pop() {
            popped.push(e);
        }
        // Popping interleaved with pushing is not globally sorted, but the
        // multiset must match and the final drain must be sorted by
        // (time, seq) among the events still pending at each point. The
        // cheap end-to-end check: a full drain-only run agrees with the
        // stable sort.
        let mut q2 = EventQueue::new();
        for &(t, i) in &reference {
            q2.push(SimTime::from(t as f64), i);
        }
        let mut sorted = reference.clone();
        sorted.sort_by_key(|&(t, i)| (t, i));
        let drained: Vec<usize> = std::iter::from_fn(|| q2.pop().map(|(_, e)| e)).collect();
        assert_eq!(drained, sorted.iter().map(|&(_, i)| i).collect::<Vec<_>>());
        // And the interleaved run loses nothing.
        popped.sort_unstable();
        assert_eq!(popped, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from(2.0), ());
        q.push(SimTime::from(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from(1.0)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_keeps_capacity_until_shrunk() {
        let mut q = EventQueue::with_capacity(256);
        for i in 0..256 {
            q.push(SimTime::from(i as f64), i);
        }
        let cap = q.capacity();
        assert!(cap >= 256);
        q.clear();
        // Documented behavior: the allocation survives a clear…
        assert_eq!(q.len(), 0);
        assert_eq!(q.capacity(), cap);
        // …and is released by an explicit shrink.
        q.shrink_to_fit();
        assert!(q.capacity() < cap);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from(1.0), 1);
        q.push(SimTime::from(3.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn replace_earliest_equals_pop_then_push() {
        // The fused operation must be observationally identical to
        // pop-then-push across an adversarial interleaving.
        let mut fused = EventQueue::new();
        let mut plain = EventQueue::new();
        let mut state = 1u64;
        for i in 0..500usize {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let t = SimTime::from(((state >> 58) & 31) as f64);
            fused.push(t, i);
            plain.push(t, i);
            if state.is_multiple_of(2) && !fused.is_empty() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                let t2 = SimTime::from(((state >> 57) & 63) as f64);
                let a = fused.replace_earliest(t2, i + 10_000);
                let b = plain.pop();
                plain.push(t2, i + 10_000);
                assert_eq!(a, b);
            }
        }
        let fused_rest: Vec<_> = std::iter::from_fn(|| fused.pop()).collect();
        let plain_rest: Vec<_> = std::iter::from_fn(|| plain.pop()).collect();
        assert_eq!(
            fused_rest.iter().map(|&(t, e)| (t, e)).collect::<Vec<_>>(),
            plain_rest.iter().map(|&(t, e)| (t, e)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn replace_earliest_on_empty_schedules() {
        let mut q = EventQueue::new();
        assert_eq!(q.replace_earliest(SimTime::from(1.0), 'a'), None);
        assert_eq!(q.peek(), Some((SimTime::from(1.0), &'a')));
        assert_eq!(q.pop(), Some((SimTime::from(1.0), 'a')));
    }

    #[test]
    fn single_element_and_empty_pops() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.pop(), None);
        q.push(SimTime::from(1.0), 9);
        assert_eq!(q.pop(), Some((SimTime::from(1.0), 9)));
        assert_eq!(q.pop(), None);
    }
}
