//! A small deterministic discrete-event simulation engine.
//!
//! The Monte-Carlo side of the Pollux reproduction runs event-level
//! simulations of clusters and overlays; this crate provides the generic
//! machinery:
//!
//! * [`SimTime`] — simulation clock values with a total order.
//! * [`EventQueue`] / [`CalendarQueue`] — two interchangeable
//!   future-event lists with deterministic FIFO tie-breaking at equal
//!   timestamps (a 4-ary heap and an O(1)-amortized calendar queue),
//!   unified by the [`FutureEventList`] trait and selected via
//!   [`QueueBackend`].
//! * [`Simulation`] — the main loop driving a user [`EventHandler`].
//! * [`churn`] — Poisson arrival processes for churn generation.
//! * [`stats`] — Welford accumulators, counters and time series with
//!   normal-approximation confidence intervals.
//! * [`replication`] — seeded, embarrassingly parallel Monte-Carlo
//!   replication over OS threads.
//!
//! The engine is deliberately model-agnostic; its flagship consumer is
//! `pollux::des_overlay`, which drives a whole clustered overlay
//! (10⁵–10⁶ nodes) through one [`Simulation`] with per-cluster Poisson
//! arrival streams and an allocation-free event loop.
//!
//! # Example
//!
//! ```
//! use pollux_des::{EventHandler, Scheduler, SimTime, Simulation};
//!
//! struct Counter(u32);
//! impl EventHandler for Counter {
//!     type Event = ();
//!     fn handle(&mut self, t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
//!         self.0 += 1;
//!         if self.0 < 5 {
//!             sched.schedule(t + 1.0, ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter(0));
//! sim.schedule(SimTime::ZERO, ());
//! sim.run();
//! assert_eq!(sim.handler().0, 5);
//! assert_eq!(sim.now(), SimTime::from(4.0));
//! ```

mod backend;
mod calendar;
pub mod churn;
mod engine;
mod queue;
pub mod replication;
pub mod stats;
mod time;

pub use backend::{FutureEventList, QueueBackend};
pub use calendar::CalendarQueue;
pub use engine::{EventHandler, Scheduler, Simulation};
pub use queue::EventQueue;
pub use time::SimTime;
