//! Statistics collection for Monte-Carlo simulation.
//!
//! [`Welford`] accumulates means and variances in one numerically stable
//! pass; [`Summary`] reports them with normal-approximation confidence
//! intervals; [`TimeSeries`] records sampled trajectories.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use pollux_des::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        self.m2 / (self.count - 1) as f64
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.m2 / self.count as f64
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sample_variance() / self.count as f64).sqrt()
    }

    /// Summary with a normal-approximation confidence half-width at the
    /// given z value (1.96 for 95 %).
    pub fn summary(&self, z: f64) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            variance: self.sample_variance(),
            ci_half_width: z * self.standard_error(),
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

/// Point summary of a sample: mean, variance and confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Half-width of the confidence interval around the mean.
    pub ci_half_width: f64,
}

impl Summary {
    /// `true` when `value` lies inside the confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci_half_width
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} (n={})",
            self.mean, self.ci_half_width, self.count
        )
    }
}

/// A recorded trajectory: `(time-or-step, value)` samples in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample; times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics when `t` is smaller than the previous sample time.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(
                t >= last,
                "time series must be non-decreasing: {t} < {last}"
            );
        }
        self.samples.push((t, value));
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time-weighted average over the recorded span (step-function
    /// interpretation: each value holds until the next sample).
    ///
    /// Returns `None` with fewer than two samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        for w in self.samples.windows(2) {
            area += w[0].1 * (w[1].0 - w[0].0);
        }
        let span = self.samples.last().expect("nonempty").0 - self.samples[0].0;
        if span <= 0.0 {
            return None;
        }
        Some(area / span)
    }

    /// Value at time `t` under the step-function interpretation (the last
    /// sample at or before `t`); `None` before the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let mut out = None;
        for &(st, v) in &self.samples {
            if st <= t {
                out = Some(v);
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.sample_variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..200] {
            left.push(x);
        }
        for &x in &data[200..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        // Merging an empty accumulator changes nothing.
        left.merge(&Welford::new());
        assert_eq!(left.count(), 500);
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.standard_error(), 0.0);
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn summary_confidence_interval() {
        let mut w = Welford::new();
        for x in [1.0f64, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        let s = w.summary(1.96);
        assert_eq!(s.mean, 3.0);
        assert!(s.covers(3.0));
        assert!(!s.covers(100.0));
        assert!(s.to_string().contains("n=5"));
    }

    #[test]
    fn time_series_average() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        ts.push(3.0, 0.0);
        // Step function: 1.0 over [0,1), 3.0 over [1,3): area = 1 + 6 = 7.
        assert!((ts.time_weighted_mean().unwrap() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(ts.value_at(0.5), Some(1.0));
        assert_eq!(ts.value_at(2.0), Some(3.0));
        assert_eq!(ts.value_at(-1.0), None);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }

    #[test]
    fn time_series_degenerate_cases() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.time_weighted_mean(), None);
        let mut ts = TimeSeries::new();
        ts.push(1.0, 5.0);
        assert_eq!(ts.time_weighted_mean(), None);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_series_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(2.0, 0.0);
        ts.push(1.0, 0.0);
    }
}
