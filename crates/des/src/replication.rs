//! Seeded parallel Monte-Carlo replication.
//!
//! Runs independent replications of a simulation across OS threads with
//! per-replication seeds derived deterministically from a master seed, so
//! results are reproducible regardless of thread scheduling.

use crate::stats::{Summary, Welford};

/// Derives the seed of replication `index` from `master_seed` via
/// SplitMix64 (distinct, well-mixed streams).
pub fn replication_seed(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs `replications` copies of `body` (each given its replication index
/// and derived seed) over at most `threads` OS threads, and returns the
/// results in replication order.
///
/// `body` must be deterministic in its `(index, seed)` arguments for the
/// output to be reproducible — the engine guarantees the same seeds are
/// handed out regardless of scheduling.
///
/// # Panics
///
/// Panics when `threads == 0` or a worker panics.
pub fn run_parallel<T, F>(replications: usize, master_seed: u64, threads: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let next = std::sync::atomic::AtomicUsize::new(0);
    let body_ref = &body;

    // Workers pull indices from a shared counter and keep (index, result)
    // pairs locally; results are re-ordered after the join.
    let partials: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(replications.max(1)))
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= replications {
                            break;
                        }
                        local.push((i, body_ref(i, replication_seed(master_seed, i as u64))));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication worker panicked"))
            .collect()
    });

    let mut results: Vec<Option<T>> = (0..replications).map(|_| None).collect();
    for (i, value) in partials.into_iter().flatten() {
        results[i] = Some(value);
    }
    results
        .into_iter()
        .map(|r| r.expect("every replication index was visited"))
        .collect()
}

/// Convenience wrapper: runs replications producing one `f64` each and
/// summarizes them with a 95 % normal-approximation confidence interval.
pub fn run_and_summarize<F>(
    replications: usize,
    master_seed: u64,
    threads: usize,
    body: F,
) -> Summary
where
    F: Fn(usize, u64) -> f64 + Sync,
{
    let values = run_parallel(replications, master_seed, threads, body);
    let mut w = Welford::new();
    for v in values {
        w.push(v);
    }
    w.summary(1.96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let a: Vec<u64> = (0..100).map(|i| replication_seed(42, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| replication_seed(42, i)).collect();
        assert_eq!(a, b);
        let unique: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(unique.len(), 100);
        // Different master seed, different streams.
        let c: Vec<u64> = (0..100).map(|i| replication_seed(43, i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_results_in_replication_order() {
        let results = run_parallel(50, 7, 4, |i, seed| (i, seed));
        for (i, (idx, seed)) in results.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, replication_seed(7, i as u64));
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = run_parallel(32, 99, 1, |i, seed| i as u64 ^ seed);
        let parallel = run_parallel(32, 99, 8, |i, seed| i as u64 ^ seed);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let results = run_parallel(3, 1, 16, |i, _| i * 2);
        assert_eq!(results, vec![0, 2, 4]);
        let empty: Vec<u32> = run_parallel(0, 1, 4, |_, _| 0u32);
        assert!(empty.is_empty());
    }

    #[test]
    fn summarize_monte_carlo_mean() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        // Estimate the mean of U(0,1) with 200 replications of 100 draws.
        let summary = run_and_summarize(200, 5, 4, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| rng.random::<f64>()).sum::<f64>() / 100.0
        });
        assert_eq!(summary.count, 200);
        assert!(
            (summary.mean - 0.5).abs() < 0.02,
            "mean {} too far from 0.5",
            summary.mean
        );
        assert!(summary.covers(0.5));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        run_parallel(1, 0, 0, |_, _| ());
    }
}
