//! The queue-backend abstraction: one trait over the two future-event
//! lists ([`EventQueue`], [`CalendarQueue`]) plus the [`QueueBackend`]
//! selector consumers put in their configs.
//!
//! Both backends implement the **same dispatch contract** — strict
//! `(time, seq)` order, FIFO tie-breaking, fused `replace_earliest` —
//! so a simulation generic over [`FutureEventList`] produces *identical
//! event streams* on either; only the constant factors differ (log₄ n
//! sifts vs O(1) amortized bucket hops). Keeping both live makes every
//! result diffable across backends, which CI exploits as a standing
//! correctness check.

use crate::{CalendarQueue, EventQueue, SimTime};

/// A deterministic future-event list: the operations the simulation hot
/// loop needs, with `(time, seq)` dispatch order and FIFO tie-breaking
/// guaranteed by every implementor.
pub trait FutureEventList<E: Copy> {
    /// An empty list pre-sized for `expected_events` pending events that
    /// individually recur at `event_rate` (events per simulated time
    /// unit). The heap uses only the count; the calendar queue also
    /// tunes its bucket width from the rate.
    fn with_profile(expected_events: usize, event_rate: f64) -> Self;

    /// Schedules `event` at `time`.
    fn push(&mut self, time: SimTime, event: E);

    /// Removes and returns the earliest event.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The earliest pending event, without removing it.
    fn peek(&self) -> Option<(SimTime, &E)>;

    /// Timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;

    /// Removes and returns the earliest event while scheduling `event`
    /// at `time` (the fused pop-then-push); `None` — after scheduling
    /// `event` anyway — when the list was empty.
    fn replace_earliest(&mut self, time: SimTime, event: E) -> Option<(SimTime, E)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes up to four payloads likely to dispatch soon into `out`
    /// and returns how many were written. Purely a prefetch hint: any
    /// subset of pending events (in any order) is a valid answer, and
    /// implementations must never let it affect dispatch.
    fn prefetch_hints(&self, out: &mut [E; 4]) -> usize;

    /// Exact byte size of one stored event (the memory-audit unit).
    fn entry_bytes() -> usize;

    /// Bytes of the backing allocations.
    fn queue_bytes(&self) -> usize;
}

impl<E: Copy> FutureEventList<E> for EventQueue<E> {
    #[inline]
    fn with_profile(expected_events: usize, _event_rate: f64) -> Self {
        EventQueue::with_capacity(expected_events)
    }

    #[inline]
    fn push(&mut self, time: SimTime, event: E) {
        EventQueue::push(self, time, event);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }

    #[inline]
    fn peek(&self) -> Option<(SimTime, &E)> {
        EventQueue::peek(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    #[inline]
    fn replace_earliest(&mut self, time: SimTime, event: E) -> Option<(SimTime, E)> {
        EventQueue::replace_earliest(self, time, event)
    }

    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    #[inline]
    fn prefetch_hints(&self, out: &mut [E; 4]) -> usize {
        let mut n = 0;
        for &e in self.runners_up() {
            if n == out.len() {
                break;
            }
            out[n] = e;
            n += 1;
        }
        n
    }

    #[inline]
    fn entry_bytes() -> usize {
        EventQueue::<E>::entry_bytes()
    }

    #[inline]
    fn queue_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

impl<E: Copy> FutureEventList<E> for CalendarQueue<E> {
    #[inline]
    fn with_profile(expected_events: usize, event_rate: f64) -> Self {
        CalendarQueue::with_profile(expected_events, event_rate)
    }

    #[inline]
    fn push(&mut self, time: SimTime, event: E) {
        CalendarQueue::push(self, time, event);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }

    #[inline]
    fn peek(&self) -> Option<(SimTime, &E)> {
        CalendarQueue::peek(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }

    #[inline]
    fn replace_earliest(&mut self, time: SimTime, event: E) -> Option<(SimTime, E)> {
        CalendarQueue::replace_earliest(self, time, event)
    }

    #[inline]
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    #[inline]
    fn prefetch_hints(&self, out: &mut [E; 4]) -> usize {
        CalendarQueue::prefetch_hints(self, out)
    }

    #[inline]
    fn entry_bytes() -> usize {
        CalendarQueue::<E>::entry_bytes()
    }

    #[inline]
    fn queue_bytes(&self) -> usize {
        CalendarQueue::queue_bytes(self)
    }
}

/// Which future-event list a simulation runs on. Both choices produce
/// byte-identical results (the [`FutureEventList`] dispatch contract);
/// the selector only trades constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Resolve from the `POLLUX_DES_QUEUE` environment variable
    /// (`heap` | `calendar`), defaulting to [`QueueBackend::Heap`] when
    /// unset. The env lever lets CI diff backends across whole sweep
    /// artefacts without plumbing a flag through every binary — safe
    /// precisely because the backends are byte-identical by contract.
    #[default]
    Auto,
    /// The index-based 4-ary min-heap ([`EventQueue`]).
    Heap,
    /// The calendar queue ([`CalendarQueue`]).
    Calendar,
}

impl QueueBackend {
    /// Resolves [`QueueBackend::Auto`] against `POLLUX_DES_QUEUE`;
    /// explicit choices pass through untouched.
    ///
    /// # Panics
    ///
    /// On an unrecognized `POLLUX_DES_QUEUE` value — a typoed CI lever
    /// must fail loudly, not silently measure the wrong backend.
    #[must_use]
    pub fn resolve(self) -> QueueBackend {
        match self {
            QueueBackend::Heap | QueueBackend::Calendar => self,
            QueueBackend::Auto => match std::env::var("POLLUX_DES_QUEUE") {
                Ok(v) if v == "heap" => QueueBackend::Heap,
                Ok(v) if v == "calendar" => QueueBackend::Calendar,
                Ok(v) => panic!("POLLUX_DES_QUEUE must be `heap` or `calendar`, got `{v}`"),
                Err(_) => QueueBackend::Heap,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains any implementor through the trait, checking order.
    fn drive<Q: FutureEventList<u32>>() -> Vec<u32> {
        let mut q = Q::with_profile(8, 1.0);
        q.push(SimTime::from(3.0), 30);
        q.push(SimTime::from(1.0), 10);
        q.push(SimTime::from(3.0), 31);
        assert_eq!(q.peek_time(), Some(SimTime::from(1.0)));
        assert_eq!(
            q.peek().map(|(t, &e)| (t, e)),
            Some((SimTime::from(1.0), 10))
        );
        let mut hints = [0u32; 4];
        let n = q.prefetch_hints(&mut hints);
        assert!(n <= q.len());
        let replaced = q.replace_earliest(SimTime::from(2.0), 20);
        assert_eq!(replaced, Some((SimTime::from(1.0), 10)));
        assert!(Q::entry_bytes() > 0 && q.queue_bytes() > 0);
        std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
    }

    #[test]
    fn both_backends_honor_the_trait_contract() {
        assert_eq!(drive::<EventQueue<u32>>(), vec![20, 30, 31]);
        assert_eq!(drive::<CalendarQueue<u32>>(), vec![20, 30, 31]);
    }

    #[test]
    fn explicit_backends_resolve_to_themselves() {
        assert_eq!(QueueBackend::Heap.resolve(), QueueBackend::Heap);
        assert_eq!(QueueBackend::Calendar.resolve(), QueueBackend::Calendar);
    }

    // `Auto` resolution reads the process environment; exercised by the
    // env-sensitive integration paths (CI sets POLLUX_DES_QUEUE), not
    // here, to keep unit tests hermetic under parallel execution.
}
