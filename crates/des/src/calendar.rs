//! A calendar-queue future-event list — the O(1)-amortized alternative
//! to the 4-ary heap of [`crate::EventQueue`].
//!
//! The classic Brown calendar queue hashes each pending event into a
//! circular array of *day* buckets by `⌊t / width⌋ mod nbuckets` and
//! keeps a cursor walking the buckets in time order; when the bucket
//! width matches the mean spacing of dispatched events, each operation
//! touches O(1) buckets and O(1) entries on average, independent of the
//! number of pending events — where every heap pays a `log n` sift.
//!
//! This implementation preserves the **exact dispatch order** of
//! [`crate::EventQueue`]: strict `(time, seq)` ordering with FIFO
//! tie-breaking, found by a full min-scan of the cursor's bucket (the
//! within-bucket chain order therefore never leaks into results), so the
//! two backends are interchangeable in any deterministic simulation —
//! test-pinned by the dispatch-equivalence proptests in this crate and
//! consumed as the [`crate::QueueBackend`] choice of
//! `pollux::des_overlay`.
//!
//! # Bucket-width tuning
//!
//! For the overlay workload — `n` pending arrivals, each rescheduled
//! `Exp(λ)` past the current time — pending timestamps pile up with
//! density `n·λ` just ahead of the cursor (the superposed process is
//! memoryless), so the queue advances one dispatch every `1/(n·λ)` time
//! units on average. [`CalendarQueue::with_profile`] therefore sets
//! `width = 1/(n·λ)` (one dispatch per bucket advance) and
//! `nbuckets = next_pow2(n)` (one pending event per bucket): the cursor
//! steps ~one bucket per pop and scans ~one entry per step. Resizes
//! re-estimate the width from the measured spread of the pending set,
//! `(t_max − t_min)/len` — the same mean-spacing rule, computed from
//! live content instead of a rate parameter.
//!
//! # Example
//!
//! ```
//! use pollux_des::{CalendarQueue, SimTime};
//!
//! let mut q = CalendarQueue::new();
//! q.push(SimTime::from(2.0), "b");
//! q.push(SimTime::from(1.0), "a");
//! q.push(SimTime::from(2.0), "c");
//! assert_eq!(q.pop(), Some((SimTime::from(1.0), "a")));
//! assert_eq!(q.pop(), Some((SimTime::from(2.0), "b"))); // FIFO tie-break
//! assert_eq!(q.pop(), Some((SimTime::from(2.0), "c")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::SimTime;
use std::cell::Cell;

/// Chain terminator / "no slot" sentinel for the intrusive lists.
const NIL: u32 = u32::MAX;

/// Smallest bucket count the queue ever shrinks to.
const MIN_BUCKETS: usize = 4;

/// One stored event: the `(time, seq)` dispatch key, the payload and the
/// intrusive bucket-chain link. 24 bytes for a `u32` payload — the same
/// per-event footprint as the 4-ary heap's entry.
#[derive(Debug, Clone)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    /// Next slot in the same bucket chain (or the free list), [`NIL`]
    /// terminated.
    next: u32,
    event: E,
}

impl<E> Slot<E> {
    /// Strict `(time, seq)` ordering: the dispatch key.
    #[inline]
    fn before(&self, other: &Self) -> bool {
        match self.time.cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// A calendar-queue future-event list with the dispatch semantics of
/// [`crate::EventQueue`] (strict `(time, seq)` order, FIFO ties, fused
/// [`CalendarQueue::replace_earliest`]) and O(1) amortized push/pop when
/// the bucket width matches the workload (see the module docs).
///
/// Timestamps must be non-negative (simulation clocks are); negative
/// times would all hash into day zero, staying correct but degenerate.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Flat slot storage; free slots are chained through `next`.
    slots: Vec<Slot<E>>,
    /// Head of the free-slot chain.
    free_head: u32,
    /// Bucket heads: `heads[vb & mask]` starts the chain of virtual
    /// bucket `vb` (entries of *other* years hash here too and are
    /// filtered by recomputing their virtual bucket during scans).
    heads: Vec<u32>,
    /// `nbuckets - 1`; bucket count is always a power of two.
    mask: u64,
    /// Bucket width and its reciprocal (the hash multiplies).
    width: f64,
    width_inv: f64,
    /// Cursor: the virtual bucket the next dispatch is searched from.
    /// Invariant: no pending entry has a smaller virtual bucket.
    cur_vb: Cell<u64>,
    /// Memoized minimum `(virtual bucket, slot)` — found by `peek`,
    /// consumed by `pop`/`replace_earliest`, so the peek-then-pop hot
    /// loop pays for one bucket scan, not two.
    cached_min: Cell<Option<(u64, u32)>>,
    len: usize,
    next_seq: u64,
}

impl<E> CalendarQueue<E> {
    /// An empty queue with default geometry (4 buckets, unit width);
    /// pushes re-tune it by resize. Prefer
    /// [`CalendarQueue::with_profile`] when the workload is known.
    pub fn new() -> Self {
        Self::with_geometry(MIN_BUCKETS, 1.0, 0)
    }

    /// An empty queue holding `capacity` events without reallocating,
    /// with default geometry.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_geometry(MIN_BUCKETS, 1.0, capacity)
    }

    /// An empty queue pre-tuned for a steady-state population of
    /// `expected_events` pending events, each rescheduled at rate
    /// `event_rate` past the current time: `width = 1/(n·rate)` — the
    /// mean dispatch spacing of the superposed process — and one bucket
    /// per expected event (see the module docs for the derivation).
    pub fn with_profile(expected_events: usize, event_rate: f64) -> Self {
        let n = expected_events.max(1);
        let width = if event_rate.is_finite() && event_rate > 0.0 {
            1.0 / (n as f64 * event_rate)
        } else {
            1.0
        };
        Self::with_geometry(n.next_power_of_two().max(MIN_BUCKETS), width, n)
    }

    fn with_geometry(nbuckets: usize, width: f64, capacity: usize) -> Self {
        debug_assert!(nbuckets.is_power_of_two());
        CalendarQueue {
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            heads: vec![NIL; nbuckets],
            mask: nbuckets as u64 - 1,
            width,
            width_inv: 1.0 / width,
            cur_vb: Cell::new(0),
            cached_min: Cell::new(None),
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of events the slot storage holds without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Exact byte size of one stored event for this payload type — the
    /// memory-accounting unit (24 bytes for a `u32` payload, matching
    /// the heap's entry).
    #[must_use]
    pub const fn entry_bytes() -> usize {
        std::mem::size_of::<Slot<E>>()
    }

    /// Bytes of the backing allocations: slot storage plus the bucket
    /// head array.
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        self.slots.capacity() * Self::entry_bytes() + self.heads.capacity() * 4
    }

    /// Current bucket count (power of two; resizes with the population).
    #[must_use]
    pub fn nbuckets(&self) -> usize {
        self.heads.len()
    }

    /// Current bucket width in time units.
    #[must_use]
    pub fn bucket_width(&self) -> f64 {
        self.width
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Virtual (un-wrapped) bucket of a timestamp. Saturates at the
    /// extremes: negative times land in day 0, enormous `t/width`
    /// ratios in day `u64::MAX` — both stay correct (the min-scan
    /// orders by `(time, seq)`, never by bucket).
    #[inline]
    fn vb(&self, time: SimTime) -> u64 {
        (time.value() * self.width_inv) as u64
    }

    /// Takes a slot from the free chain or grows the storage.
    fn alloc_slot(&mut self, time: SimTime, seq: u64, event: E) -> u32 {
        let idx = self.free_head;
        if idx != NIL {
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.next = NIL;
            slot.event = event;
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "calendar queue holds at most 2^32 - 1 events");
            self.slots.push(Slot {
                time,
                seq,
                next: NIL,
                event,
            });
            idx
        }
    }

    /// Links an allocated slot into its bucket chain and maintains the
    /// cursor invariant; returns the slot's virtual bucket.
    fn link(&mut self, idx: u32) -> u64 {
        let time = self.slots[idx as usize].time;
        let vb = self.vb(time);
        let b = (vb & self.mask) as usize;
        self.slots[idx as usize].next = self.heads[b];
        self.heads[b] = idx;
        self.len += 1;
        if self.len == 1 || vb < self.cur_vb.get() {
            self.cur_vb.set(vb);
        }
        vb
    }

    /// Unlinks `idx` from its bucket chain (found by rehashing its
    /// timestamp) without freeing the slot.
    fn unlink(&mut self, idx: u32) {
        let vb = self.vb(self.slots[idx as usize].time);
        let b = (vb & self.mask) as usize;
        let mut cur = self.heads[b];
        if cur == idx {
            self.heads[b] = self.slots[idx as usize].next;
        } else {
            loop {
                let next = self.slots[cur as usize].next;
                debug_assert!(next != NIL, "slot must be in its bucket chain");
                if next == idx {
                    self.slots[cur as usize].next = self.slots[idx as usize].next;
                    break;
                }
                cur = next;
            }
        }
        self.len -= 1;
    }

    /// Returns the slot to the free chain.
    fn free_slot(&mut self, idx: u32) {
        self.slots[idx as usize].next = self.free_head;
        self.free_head = idx;
    }

    /// Locates the minimum-`(time, seq)` entry: the memo if present,
    /// otherwise a cursor scan (one year at most) with a global-scan
    /// fallback for sparse far-future content. Updates the cursor and
    /// the memo; `None` iff empty.
    fn ensure_min(&self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        if let Some(found) = self.cached_min.get() {
            return Some(found);
        }
        let nbuckets = self.heads.len();
        let mut vb = self.cur_vb.get();
        for _ in 0..nbuckets {
            let mut best: u32 = NIL;
            let mut cur = self.heads[(vb & self.mask) as usize];
            while cur != NIL {
                let slot = &self.slots[cur as usize];
                if self.vb(slot.time) == vb
                    && (best == NIL || slot.before(&self.slots[best as usize]))
                {
                    best = cur;
                }
                cur = slot.next;
            }
            if best != NIL {
                self.cur_vb.set(vb);
                self.cached_min.set(Some((vb, best)));
                return Some((vb, best));
            }
            vb = vb.wrapping_add(1);
        }
        // A whole year without a hit: everything pending lives more than
        // `nbuckets` days ahead. Direct search over all entries.
        let mut best: u32 = NIL;
        for &head in &self.heads {
            let mut cur = head;
            while cur != NIL {
                let slot = &self.slots[cur as usize];
                if best == NIL || slot.before(&self.slots[best as usize]) {
                    best = cur;
                }
                cur = slot.next;
            }
        }
        debug_assert!(best != NIL, "len > 0 guarantees an entry");
        let vb = self.vb(self.slots[best as usize].time);
        self.cur_vb.set(vb);
        self.cached_min.set(Some((vb, best)));
        Some((vb, best))
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.maybe_resize(self.len + 1);
        let idx = self.alloc_slot(time, seq, event);
        self.link(idx);
        if let Some((_, m)) = self.cached_min.get() {
            if self.slots[idx as usize].before(&self.slots[m as usize]) {
                self.cached_min
                    .set(Some((self.vb(self.slots[idx as usize].time), idx)));
            }
        }
    }

    /// Removes and returns the earliest event.
    #[must_use = "popping discards the event unless the result is consumed"]
    pub fn pop(&mut self) -> Option<(SimTime, E)>
    where
        E: Copy,
    {
        let (vb, idx) = self.ensure_min()?;
        self.cur_vb.set(vb);
        self.cached_min.set(None);
        self.unlink(idx);
        let slot = &self.slots[idx as usize];
        let out = (slot.time, slot.event);
        self.free_slot(idx);
        self.maybe_resize(self.len);
        Some(out)
    }

    /// Timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.ensure_min()
            .map(|(_, idx)| self.slots[idx as usize].time)
    }

    /// The earliest pending event, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.ensure_min().map(|(_, idx)| {
            let slot = &self.slots[idx as usize];
            (slot.time, &slot.event)
        })
    }

    /// Removes and returns the earliest event while scheduling `event`
    /// at `time` in its place — the fused pop-then-push of
    /// [`crate::EventQueue::replace_earliest`], here reusing the
    /// departing slot (no free-list traffic). Returns `None` (after
    /// scheduling `event` as a plain push) when the queue was empty.
    pub fn replace_earliest(&mut self, time: SimTime, event: E) -> Option<(SimTime, E)>
    where
        E: Copy,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.ensure_min() {
            None => {
                let idx = self.alloc_slot(time, seq, event);
                self.link(idx);
                None
            }
            Some((vb, idx)) => {
                self.cur_vb.set(vb);
                self.cached_min.set(None);
                self.unlink(idx);
                let slot = &mut self.slots[idx as usize];
                let out = (slot.time, slot.event);
                slot.time = time;
                slot.seq = seq;
                slot.event = event;
                self.link(idx);
                out.into()
            }
        }
    }

    /// Up to `out.len()` payloads from the cursor's bucket chain — the
    /// events most likely to dispatch soon, as a prefetch hint (the
    /// calendar analogue of the heap's runner-up children; an arbitrary
    /// subset is fine, hints have no correctness weight). Returns how
    /// many were written.
    pub fn prefetch_hints(&self, out: &mut [E]) -> usize
    where
        E: Copy,
    {
        let mut n = 0;
        let mut cur = self.heads[(self.cur_vb.get() & self.mask) as usize];
        while cur != NIL && n < out.len() {
            let slot = &self.slots[cur as usize];
            out[n] = slot.event;
            n += 1;
            cur = slot.next;
        }
        n
    }

    /// Drops all pending events, **keeping the backing allocations**
    /// (slot storage and bucket array) for reuse; call
    /// [`CalendarQueue::shrink_to_fit`] to actually return the memory.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.heads.fill(NIL);
        self.cur_vb.set(0);
        self.cached_min.set(None);
        self.len = 0;
    }

    /// Releases backing capacity: slot storage down to the live slots
    /// (possible only when the free chain is empty or the queue is
    /// empty — freed holes cannot be compacted away — so this is
    /// best-effort), bucket array down to the population's geometry.
    pub fn shrink_to_fit(&mut self) {
        if self.len == 0 {
            self.slots.clear();
            self.free_head = NIL;
        }
        self.slots.shrink_to_fit();
        if self.len == 0 && self.heads.len() > MIN_BUCKETS {
            self.heads.clear();
            self.heads.resize(MIN_BUCKETS, NIL);
            self.heads.shrink_to_fit();
            self.mask = MIN_BUCKETS as u64 - 1;
            self.cur_vb.set(0);
        }
    }

    /// Grows (population > 2·buckets) or shrinks (population <
    /// buckets/4) the bucket array to track the pending population,
    /// re-estimating the width from the measured spread of pending
    /// timestamps — the auto-tune rule of the module docs.
    fn maybe_resize(&mut self, population: usize) {
        let nbuckets = self.heads.len();
        let grow = population > 2 * nbuckets;
        let shrink = nbuckets > MIN_BUCKETS && population * 4 < nbuckets;
        if !(grow || shrink) {
            return;
        }
        let target = population.next_power_of_two().max(MIN_BUCKETS);
        self.rebuild(target);
    }

    /// Re-hashes every pending entry into `nbuckets` buckets with a
    /// freshly estimated width. Slot storage (and therefore slot
    /// indices) is untouched; only the chains move.
    fn rebuild(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        // Collect the live slots by draining the old chains.
        let mut live: Vec<u32> = Vec::with_capacity(self.len);
        for head in self.heads.iter_mut() {
            let mut cur = *head;
            while cur != NIL {
                live.push(cur);
                cur = self.slots[cur as usize].next;
            }
            *head = NIL;
        }
        debug_assert_eq!(live.len(), self.len);

        // Width re-estimate: mean spacing of the pending set. Degenerate
        // spreads (all ties, or a single entry) keep the current width.
        if live.len() >= 2 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &idx in &live {
                let t = self.slots[idx as usize].time.value();
                lo = lo.min(t);
                hi = hi.max(t);
            }
            let est = (hi - lo) / live.len() as f64;
            if est.is_finite() && est > 0.0 {
                self.width = est;
                self.width_inv = 1.0 / est;
            }
        }

        self.heads.clear();
        self.heads.resize(nbuckets, NIL);
        self.mask = nbuckets as u64 - 1;

        // Relink under the new geometry, tracking the new minimum so the
        // cursor (and memo) survive the rebuild.
        self.len = 0;
        self.cached_min.set(None);
        let mut best: u32 = NIL;
        let mut best_vb = 0u64;
        for &idx in &live {
            let vb = self.link(idx);
            if best == NIL || self.slots[idx as usize].before(&self.slots[best as usize]) {
                best = idx;
                best_vb = vb;
            }
        }
        if best != NIL {
            self.cur_vb.set(best_vb);
            self.cached_min.set(Some((best_vb, best)));
        } else {
            self.cur_vb.set(0);
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn orders_by_time() {
        let mut q = CalendarQueue::new();
        for (t, e) in [(5.0, 'e'), (1.0, 'a'), (3.0, 'c')] {
            q.push(SimTime::from(t), e);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'c', 'e']);
    }

    #[test]
    fn fifo_at_equal_times() {
        // All ties land in one bucket; the full min-scan must still
        // dispatch them in scheduling order.
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(SimTime::from(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_ties_survive_interleaved_distinct_times() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from(2.0), 1u8);
        q.push(SimTime::from(1.0), 0);
        q.push(SimTime::from(2.0), 2);
        q.push(SimTime::from(3.0), 4);
        q.push(SimTime::from(2.0), 3);
        let order: Vec<u8> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn far_future_gaps_fall_back_to_direct_search() {
        // Entries more than a year (nbuckets · width) past the cursor
        // exercise the global-scan fallback.
        let mut q = CalendarQueue::with_profile(4, 1.0);
        q.push(SimTime::from(0.5), 'a');
        q.push(SimTime::from(1e6), 'z');
        q.push(SimTime::from(2e6), 'y');
        assert_eq!(q.pop(), Some((SimTime::from(0.5), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from(1e6), 'z')));
        assert_eq!(q.pop(), Some((SimTime::from(2e6), 'y')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from(2.0), 0u32);
        q.push(SimTime::from(1.0), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from(1.0)));
        assert_eq!(q.peek(), Some((SimTime::from(1.0), &1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // The queue keeps working after a clear.
        q.push(SimTime::from(4.0), 9);
        assert_eq!(q.pop(), Some((SimTime::from(4.0), 9)));
    }

    #[test]
    fn replace_earliest_on_empty_schedules() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.replace_earliest(SimTime::from(1.0), 'a'), None);
        assert_eq!(q.peek(), Some((SimTime::from(1.0), &'a')));
        assert_eq!(q.pop(), Some((SimTime::from(1.0), 'a')));
    }

    #[test]
    fn resizes_track_population_and_stay_ordered() {
        let mut q = CalendarQueue::new();
        // Push far past the initial 4-bucket geometry…
        for i in 0..4096u32 {
            let t = (i as f64 * 0.73).rem_euclid(97.0);
            q.push(SimTime::from(t), i);
        }
        assert!(q.nbuckets() >= 1024, "grew to {}", q.nbuckets());
        // …drain halfway (shrinks)…
        let mut last = SimTime::from(-1.0);
        for _ in 0..4000 {
            let (t, _) = q.pop().expect("still full");
            assert!(t >= last);
            last = t;
        }
        assert!(q.nbuckets() < 1024, "shrank to {}", q.nbuckets());
        // …and the tail still dispatches in order.
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn shrink_to_fit_releases_empty_storage() {
        let mut q = CalendarQueue::with_capacity(512);
        for i in 0..512u32 {
            q.push(SimTime::from(i as f64), i);
        }
        while q.pop().is_some() {}
        let before = q.queue_bytes();
        q.shrink_to_fit();
        assert!(q.queue_bytes() < before);
        assert_eq!(q.nbuckets(), MIN_BUCKETS);
    }

    #[test]
    fn entry_bytes_match_the_heap() {
        // Both backends store 24 bytes per pending `u32` event, so the
        // memory audit can use either interchangeably.
        assert_eq!(
            CalendarQueue::<u32>::entry_bytes(),
            EventQueue::<u32>::entry_bytes()
        );
        assert_eq!(CalendarQueue::<u32>::entry_bytes(), 24);
    }

    #[test]
    fn profile_sets_the_documented_geometry() {
        let q = CalendarQueue::<u32>::with_profile(1000, 2.0);
        assert_eq!(q.nbuckets(), 1024);
        assert!((q.bucket_width() - 1.0 / 2000.0).abs() < 1e-15);
    }

    /// Deterministic xorshift for the adversarial mixes below.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *state
    }

    #[test]
    fn matches_the_heap_on_adversarial_mixes() {
        // The dispatch-equivalence contract, exercised over a push/pop/
        // replace mix with coarse times (many exact ties): every
        // operation must return exactly what the 4-ary heap returns.
        let mut cal = CalendarQueue::with_profile(64, 1.0);
        let mut heap = EventQueue::new();
        let mut state = 0x2011u64;
        for i in 0..5000u32 {
            match next(&mut state) % 4 {
                0 | 1 => {
                    let t = SimTime::from((next(&mut state) >> 58) as f64);
                    cal.push(t, i);
                    heap.push(t, i);
                }
                2 => {
                    assert_eq!(cal.pop(), heap.pop());
                }
                _ => {
                    let t = SimTime::from((next(&mut state) >> 57) as f64);
                    assert_eq!(
                        cal.replace_earliest(t, i + 1_000_000),
                        heap.replace_earliest(t, i + 1_000_000)
                    );
                }
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
