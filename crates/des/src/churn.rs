//! Churn processes: Poisson arrivals and the join/leave event mix.
//!
//! The paper models the overlay as driven by a stream of join and leave
//! events with equal probability (`p_j = p_ℓ = 1/2`), uniformly spread over
//! clusters. [`PoissonProcess`] generates the arrival times;
//! [`EventMix`] flips the (possibly biased) join/leave coin.

use pollux_prob::exponential;
use rand::RngExt;

use crate::SimTime;

/// A homogeneous Poisson process with the given rate (events per time
/// unit).
///
/// # Example
///
/// ```
/// use pollux_des::{churn::PoissonProcess, SimTime};
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let p = PoissonProcess::new(2.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let t1 = p.next_after(SimTime::ZERO, &mut rng);
/// assert!(t1 > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a process with `rate > 0`, or `None` otherwise.
    pub fn new(rate: f64) -> Option<Self> {
        if rate > 0.0 && rate.is_finite() {
            Some(PoissonProcess { rate })
        } else {
            None
        }
    }

    /// The event rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples the next arrival time strictly after `now`.
    pub fn next_after<R: rand::Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> SimTime {
        now + exponential::sample(rng, self.rate)
    }
}

/// The kind of churn event hitting a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnKind {
    /// A peer wants to join.
    Join,
    /// A peer is asked to leave (honest peers comply; malicious peers
    /// follow the adversary's strategy).
    Leave,
}

/// The join/leave coin, `P(Join) = p_join` (the paper uses 1/2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMix {
    p_join: f64,
}

impl EventMix {
    /// The paper's balanced mix: joins and leaves equally likely.
    pub fn balanced() -> Self {
        EventMix { p_join: 0.5 }
    }

    /// A biased mix with join probability `p_join ∈ [0, 1]`, or `None`
    /// outside that range.
    pub fn with_join_probability(p_join: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&p_join) {
            Some(EventMix { p_join })
        } else {
            None
        }
    }

    /// The join probability.
    pub fn p_join(&self) -> f64 {
        self.p_join
    }

    /// Flips the coin.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> ChurnKind {
        if rng.random_bool(self.p_join) {
            ChurnKind::Join
        } else {
            ChurnKind::Leave
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn poisson_validation() {
        assert!(PoissonProcess::new(0.0).is_none());
        assert!(PoissonProcess::new(-1.0).is_none());
        assert!(PoissonProcess::new(f64::INFINITY).is_none());
        assert_eq!(PoissonProcess::new(2.5).unwrap().rate(), 2.5);
    }

    #[test]
    fn poisson_count_matches_rate() {
        // Count arrivals in [0, T]; expect ≈ rate * T.
        let p = PoissonProcess::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let horizon = 2_000.0;
        let mut t = SimTime::ZERO;
        let mut count = 0u64;
        loop {
            t = p.next_after(t, &mut rng);
            if t.value() > horizon {
                break;
            }
            count += 1;
        }
        let expected = 3.0 * horizon;
        // sd = sqrt(lambda) ≈ 77; allow 5 sigma.
        assert!(
            (count as f64 - expected).abs() < 5.0 * expected.sqrt(),
            "count {count} vs {expected}"
        );
    }

    #[test]
    fn arrivals_strictly_increase() {
        let p = PoissonProcess::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            let next = p.next_after(t, &mut rng);
            assert!(next >= t);
            t = next;
        }
    }

    #[test]
    fn event_mix_balance() {
        let mix = EventMix::balanced();
        assert_eq!(mix.p_join(), 0.5);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let joins = (0..n)
            .filter(|_| mix.sample(&mut rng) == ChurnKind::Join)
            .count();
        let frac = joins as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "join fraction {frac}");
    }

    #[test]
    fn event_mix_validation_and_bias() {
        assert!(EventMix::with_join_probability(1.5).is_none());
        assert!(EventMix::with_join_probability(-0.1).is_none());
        let all_join = EventMix::with_join_probability(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            assert_eq!(all_join.sample(&mut rng), ChurnKind::Join);
        }
    }
}
