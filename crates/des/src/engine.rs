use crate::{EventQueue, SimTime};

/// User logic driven by the simulation loop.
pub trait EventHandler {
    /// The event type of the simulation.
    type Event;

    /// Processes one event occurring at time `t`; new events may be
    /// scheduled through `sched` (at or after `t`).
    fn handle(&mut self, t: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The scheduling interface handed to [`EventHandler::handle`].
///
/// Wraps the future-event list and the current clock so handlers cannot
/// schedule into the past.
///
/// # Example
///
/// ```
/// use pollux_des::{EventHandler, Scheduler, SimTime, Simulation};
///
/// /// Fires `n` more times, one time unit apart, then stops the run.
/// struct Countdown(u32);
/// impl EventHandler for Countdown {
///     type Event = ();
///     fn handle(&mut self, t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
///         assert_eq!(sched.now(), t);
///         if self.0 == 0 {
///             sched.stop();
///         } else {
///             self.0 -= 1;
///             sched.schedule_in(1.0, ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Countdown(3));
/// sim.schedule(SimTime::ZERO, ());
/// sim.run();
/// assert_eq!(sim.now(), SimTime::from(3.0));
/// ```
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
    /// Set when a handler requests termination.
    stop_requested: bool,
}

impl<E> Scheduler<'_, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies strictly in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a non-negative delay.
    ///
    /// # Panics
    ///
    /// Panics when `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.queue.push(self.now + delay, event);
    }

    /// Requests that the simulation stop after the current event.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// The simulation loop: owns the clock, the future-event list and the
/// handler.
///
/// See the crate-level example for typical use. The loop itself never
/// allocates: each [`Simulation::step`] pops one entry from the
/// future-event list and hands it to the handler by value, so a simulation
/// whose event type is a small `Copy` payload (an index into an arena, say)
/// and whose queue was pre-sized with [`Simulation::with_queue_capacity`]
/// runs entirely allocation-free.
///
/// # Example
///
/// ```
/// use pollux_des::{EventHandler, Scheduler, SimTime, Simulation};
///
/// struct Ping(u64);
/// impl EventHandler for Ping {
///     type Event = u32;
///     fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
///         self.0 += u64::from(ev);
///         if ev > 0 {
///             sched.schedule_in(0.5, ev - 1);
///         }
///     }
/// }
///
/// let mut sim = Simulation::with_queue_capacity(Ping(0), 16);
/// sim.schedule(SimTime::ZERO, 4);
/// assert_eq!(sim.run(), 5); // events 4, 3, 2, 1, 0
/// assert_eq!(sim.handler().0, 10);
/// ```
#[derive(Debug)]
pub struct Simulation<H: EventHandler> {
    handler: H,
    queue: EventQueue<H::Event>,
    now: SimTime,
    processed: u64,
}

impl<H: EventHandler> Simulation<H> {
    /// Creates a simulation around `handler` with an empty event list at
    /// time zero.
    pub fn new(handler: H) -> Self {
        Simulation {
            handler,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates a simulation whose future-event list is pre-sized for
    /// `capacity` pending events (see [`EventQueue::with_capacity`]); the
    /// hot loop of a large simulation then runs without reallocation.
    pub fn with_queue_capacity(handler: H, capacity: usize) -> Self {
        Simulation {
            handler,
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Number of pending (not yet processed) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Current simulation time (the timestamp of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Borrows the handler (for reading results out).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutably borrows the handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Consumes the simulation, returning the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Schedules an initial event (before or between runs).
    pub fn schedule(&mut self, at: SimTime, event: H::Event) {
        self.queue.push(at, event);
    }

    /// Processes a single event. Returns `false` when the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            None => false,
            Some((t, ev)) => {
                debug_assert!(t >= self.now, "event queue went backwards");
                self.now = t;
                self.processed += 1;
                let mut sched = Scheduler {
                    queue: &mut self.queue,
                    now: t,
                    stop_requested: false,
                };
                self.handler.handle(t, ev, &mut sched);
                !sched.stop_requested
            }
        }
    }

    /// Runs until the event list drains or a handler calls
    /// [`Scheduler::stop`]. Returns the number of events processed by this
    /// call.
    pub fn run(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Runs until the clock passes `horizon` (events strictly after it stay
    /// queued), the list drains, or a handler stops the run.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let before = self.processed;
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            if !self.step() {
                break;
            }
        }
        self.processed - before
    }

    /// Runs at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let before = self.processed;
        for _ in 0..max_events {
            if !self.step() {
                break;
            }
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every event it sees; reschedules `n` follow-ups.
    struct Recorder {
        seen: Vec<(f64, u32)>,
        respawn: u32,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle(&mut self, t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((t.value(), ev));
            if ev < self.respawn {
                sched.schedule_in(1.0, ev + 1);
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            respawn: 3,
        });
        sim.schedule(SimTime::ZERO, 0);
        let n = sim.run();
        assert_eq!(n, 4);
        assert_eq!(
            sim.handler().seen,
            vec![(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]
        );
        assert_eq!(sim.now(), SimTime::from(3.0));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            respawn: 100,
        });
        sim.schedule(SimTime::ZERO, 0);
        sim.run_until(SimTime::from(4.5));
        assert_eq!(sim.handler().seen.len(), 5); // t = 0..4
                                                 // Continuing picks up where we left off.
        sim.run_until(SimTime::from(6.0));
        assert_eq!(sim.handler().seen.len(), 7);
    }

    #[test]
    fn run_events_bounds_work() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            respawn: u32::MAX,
        });
        sim.schedule(SimTime::ZERO, 0);
        let n = sim.run_events(10);
        assert_eq!(n, 10);
        assert_eq!(sim.processed(), 10);
    }

    struct Stopper(u32);
    impl EventHandler for Stopper {
        type Event = ();
        fn handle(&mut self, _t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
            self.0 += 1;
            sched.schedule_in(1.0, ());
            if self.0 == 3 {
                sched.stop();
            }
        }
    }

    #[test]
    fn handler_can_stop_the_run() {
        let mut sim = Simulation::new(Stopper(0));
        sim.schedule(SimTime::ZERO, ());
        sim.run();
        assert_eq!(sim.handler().0, 3);
        // The queue still holds the rescheduled event; a new run continues.
        sim.run_events(1);
        assert_eq!(sim.handler().0, 4);
    }

    struct PastScheduler;
    impl EventHandler for PastScheduler {
        type Event = ();
        fn handle(&mut self, t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
            sched.schedule(SimTime::new(t.value() - 1.0), ());
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new(PastScheduler);
        sim.schedule(SimTime::from(5.0), ());
        sim.run();
    }
}
