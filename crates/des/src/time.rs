use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation clock.
///
/// Internally an `f64` number of abstract time units; construction rejects
/// NaN so that `Ord` is total. Negative times are allowed (useful for
/// "before the horizon" sentinels) but never produced by the engine.
///
/// # Example
///
/// ```
/// use pollux_des::SimTime;
///
/// let t = SimTime::from(2.0) + 3.5;
/// assert_eq!(t, SimTime::from(5.5));
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::from(2.0), 3.5);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "simulation time cannot be NaN");
        SimTime(t)
    }

    /// The raw numeric value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is excluded at construction, so partial_cmp is total.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl From<f64> for SimTime {
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from(3.0), SimTime::ZERO, SimTime::from(-1.0)];
        v.sort();
        assert_eq!(v[0], SimTime::from(-1.0));
        assert_eq!(v[2], SimTime::from(3.0));
    }

    #[test]
    fn arithmetic() {
        let mut t = SimTime::from(1.0);
        t += 2.0;
        assert_eq!(t.value(), 3.0);
        assert_eq!(t - SimTime::from(0.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn display_debug() {
        assert!(SimTime::from(1.5).to_string().contains("1.5"));
        assert!(format!("{:?}", SimTime::ZERO).contains('0'));
    }
}
