//! Benchmarks the Figure-2 transition-matrix construction across state
//! space sizes (the kernel behind every table/figure reproduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pollux::{ClusterChain, ModelParams};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_build");
    group.sample_size(20);
    for (core, delta) in [(4usize, 4usize), (7, 7), (10, 10), (13, 13)] {
        let params = ModelParams::new(core, delta, 1)
            .expect("valid sizes")
            .with_mu(0.25)
            .with_d(0.9);
        let states = params.state_count();
        group.bench_with_input(
            BenchmarkId::new("C=Δ", format!("{core} ({states} states)")),
            &params,
            |b, p| b.iter(|| black_box(ClusterChain::build(p))),
        );
    }
    // k = C is the worst case for the τ kernel (full reshuffle sums).
    let params = ModelParams::new(7, 7, 7)
        .expect("valid sizes")
        .with_mu(0.25)
        .with_d(0.9);
    group.bench_function("C=7 k=7 (tau worst case)", |b| {
        b.iter(|| black_box(ClusterChain::build(&params)))
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
