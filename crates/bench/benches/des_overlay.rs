//! Perf trajectory of the whole-overlay DES hot loop, serialized to
//! `BENCH_des.json` at the repository root — the simulation-side
//! counterpart of `BENCH_markov.json`.
//!
//! Drives `pollux::des_overlay` over the shared `des_at_scale` ladder
//! (`pollux_bench::des_ladder`: 2¹⁴ = 16k, 2¹⁷ = 131k and 2²⁰ ≈ 1M
//! clusters — ≈1.6·10⁵ to ≈10⁷ nodes — the absorption workload: every
//! cluster runs to absorption under a non-binding per-cluster budget,
//! no regeneration) and records events/second:
//!
//! * **single shard, per backend** — the raw hot-loop number on both
//!   future-event-list backends (4-ary heap and calendar queue), with
//!   the reports asserted byte-identical; the headline compares the
//!   faster backend against the recorded pre-PR baseline (`BinaryHeap`
//!   future-event list, one global RNG, per-event exponential draws);
//! * **sharded** — one shard per available core with deterministic
//!   work-stealing on (skew 1), per-shard and aggregate rates, so a
//!   multi-core run produces the worker-pool scaling number the ROADMAP
//!   asked for (this container has `available_parallelism` CPUs; the
//!   JSON records the count).
//!
//! All runs of a rung must produce byte-identical reports (asserted
//! here, on top of the test suite), and every rung's analytic memory
//! audit must come in under 25.0 bytes per node on both backends
//! (asserted — the ISSUE's memory ceiling).
//!
//! Each rung also records a `memory` block: the exact analytic byte
//! audit from `pollux::des_overlay::des_memory_audit` (bitset flags,
//! SoA hot records, event queue, accumulators → **bytes per node**,
//! identical across platforms) per backend plus the kernel's `VmHWM`
//! peak RSS. Peak RSS is monotonic over the process, so it reflects the
//! largest rung run *so far*; per-rung structure sizes come from the
//! audit.
//!
//! Environment switches:
//!
//! * `POLLUX_BENCH_QUICK=1` — CI smoke: 16k clusters only, two samples
//!   (still both backends, still every assertion).
//!
//! Timings are min-of-N (N = 3): the ladder is deterministic, so the
//! fastest run is the least-perturbed one.

use pollux::des_overlay::QueueBackend;
use pollux_adversary::TargetedStrategy;
use pollux_bench::des_ladder::{
    ladder_config, ladder_params, rung_memory, time_sharded, time_single, LADDER_BITS,
};
use pollux_obs::mem::MemoryAudit;

/// Single-shard events/s of the 16k-cluster ladder point measured on the
/// pre-PR engine (`BinaryHeap` queue, one global `StdRng`, unbatched
/// exponential draws; `examples/des_at_scale` on the PR-4 tree, same
/// workload, best of 5). The headline below reports the current engine
/// relative to this.
const PRE_PR_EVENTS_PER_S_16K: f64 = 3.4e6;

/// One backend's single-shard measurement at a rung.
struct BackendPoint {
    single_s: f64,
    single_rate: f64,
    audit: MemoryAudit,
}

struct LadderPoint {
    bits: u32,
    clusters: usize,
    nodes: u64,
    events: u64,
    heap: BackendPoint,
    calendar: BackendPoint,
    shards: usize,
    sharded_s: f64,
    sharded_rate: f64,
    per_shard_rates: Vec<f64>,
    peak_rss_bytes: Option<u64>,
}

impl LadderPoint {
    /// The faster single-shard backend at this rung.
    fn best(&self) -> (&'static str, &BackendPoint) {
        if self.calendar.single_rate >= self.heap.single_rate {
            ("calendar", &self.calendar)
        } else {
            ("heap", &self.heap)
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::var_os("POLLUX_BENCH_QUICK").is_some();
    let ladder: Vec<u32> = if quick {
        vec![14]
    } else {
        LADDER_BITS.to_vec()
    };
    let samples = if quick { 2 } else { 3 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = cpus.max(1);

    let params = ladder_params();
    let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();

    let mut points = Vec::new();
    for &bits in &ladder {
        let heap_cfg = ladder_config(bits, QueueBackend::Heap);
        let cal_cfg = ladder_config(bits, QueueBackend::Calendar);
        let (heap_report, heap_s) = time_single(&params, &strategy, &heap_cfg, samples);
        let (cal_report, cal_s) = time_single(&params, &strategy, &cal_cfg, samples);
        assert_eq!(
            heap_report, cal_report,
            "queue backends must never change the bytes"
        );
        // Sharded with deterministic work-stealing on: same bytes again.
        let sharded_cfg = cal_cfg.clone().with_shards(shards).with_work_stealing(1);
        let (sharded, stats, sharded_s) = time_sharded(&params, &strategy, &sharded_cfg, samples);
        assert_eq!(
            heap_report, sharded,
            "sharding/stealing must never change the bytes"
        );

        let (heap_audit, _) = rung_memory(&params, &heap_cfg);
        let (cal_audit, peak) = rung_memory(&params, &cal_cfg);
        for (name, audit) in [("heap", &heap_audit), ("calendar", &cal_audit)] {
            assert!(
                audit.bytes_per_node() < 25.0,
                "{name} audit at 2^{bits} is {:.3} B/node — over the 25.0 ceiling",
                audit.bytes_per_node()
            );
        }
        let point = LadderPoint {
            bits,
            clusters: heap_report.n_clusters,
            nodes: heap_report.initial_nodes,
            events: heap_report.events,
            heap: BackendPoint {
                single_s: heap_s,
                single_rate: heap_report.events as f64 / heap_s,
                audit: heap_audit,
            },
            calendar: BackendPoint {
                single_s: cal_s,
                single_rate: cal_report.events as f64 / cal_s,
                audit: cal_audit,
            },
            shards: stats.shards(),
            sharded_s,
            sharded_rate: sharded.events as f64 / sharded_s,
            per_shard_rates: stats.shard_events_per_sec(),
            // Read *after* the rung's runs so it covers them; monotonic.
            peak_rss_bytes: peak,
        };
        let per_shard: Vec<String> = point
            .per_shard_rates
            .iter()
            .map(|r| format!("{:.2}M", r / 1e6))
            .collect();
        println!(
            "2^{} = {} clusters ({} nodes): heap {:.1}M events/s ({:.3} s), \
             calendar {:.1}M events/s ({:.3} s); {} shards (steal) {:.1}M events/s \
             aggregate ({:.3} s), per shard [{}]",
            point.bits,
            point.clusters,
            point.nodes,
            point.heap.single_rate / 1e6,
            point.heap.single_s,
            point.calendar.single_rate / 1e6,
            point.calendar.single_s,
            point.shards,
            point.sharded_rate / 1e6,
            point.sharded_s,
            per_shard.join(", "),
        );
        println!(
            "    memory: {:.2} B/node heap, {:.2} B/node calendar (audited), peak RSS {}",
            point.heap.audit.bytes_per_node(),
            point.calendar.audit.bytes_per_node(),
            point.peak_rss_bytes.map_or("n/a".to_string(), |b| format!(
                "{:.1} MiB",
                b as f64 / (1024.0 * 1024.0)
            )),
        );
        points.push(point);
    }

    let p16 = points
        .iter()
        .find(|p| p.bits == 14)
        .expect("16k point is on every ladder");
    let (best_name, best16) = p16.best();
    let speedup = best16.single_rate / PRE_PR_EVENTS_PER_S_16K;
    println!(
        "\nheadline @ 16k clusters: {:.1}M events/s single shard ({best_name}) — \
         {speedup:.2}x the pre-PR hot loop ({:.1}M events/s)",
        best16.single_rate / 1e6,
        PRE_PR_EVENTS_PER_S_16K / 1e6,
    );

    // Serialize the trajectory. Timings are measurements (not part of any
    // determinism contract); structural fields are exact.
    let mut rows = Vec::new();
    for p in &points {
        let per_shard: Vec<String> = p.per_shard_rates.iter().map(|&r| json_f64(r)).collect();
        let peak = p
            .peak_rss_bytes
            .map_or("null".to_string(), |b| b.to_string());
        let (best_name, best) = p.best();
        rows.push(format!(
            "    {{\"cluster_bits\": {}, \"clusters\": {}, \"nodes\": {}, \"events\": {}, \
             \"queues\": {{\
             \"heap\": {{\"single_shard_s\": {}, \"single_shard_events_per_s\": {}}}, \
             \"calendar\": {{\"single_shard_s\": {}, \"single_shard_events_per_s\": {}}}}}, \
             \"best_queue\": \"{}\", \
             \"single_shard_s\": {}, \"single_shard_events_per_s\": {}, \"shards\": {}, \
             \"sharded_s\": {}, \"sharded_events_per_s\": {}, \
             \"per_shard_events_per_s\": [{}], \
             \"memory\": {{\"bytes_per_node_heap\": {}, \"bytes_per_node_calendar\": {}, \
             \"peak_rss_bytes\": {}, \"audit\": {}}}}}",
            p.bits,
            p.clusters,
            p.nodes,
            p.events,
            json_f64(p.heap.single_s),
            json_f64(p.heap.single_rate),
            json_f64(p.calendar.single_s),
            json_f64(p.calendar.single_rate),
            best_name,
            json_f64(best.single_s),
            json_f64(best.single_rate),
            p.shards,
            json_f64(p.sharded_s),
            json_f64(p.sharded_rate),
            per_shard.join(", "),
            json_f64(p.heap.audit.bytes_per_node()),
            json_f64(p.calendar.audit.bytes_per_node()),
            peak,
            p.calendar.audit.to_json(),
        ));
    }
    let json = format!(
        "{{\n  \"suite\": \"des_overlay\",\n  \"mode\": \"{}\",\n  \
         \"model\": \"C=7, Delta=7, k=1, mu=0.25, d=0.9, initial=delta, lambda=1, \
         run-to-absorption (non-binding 3000-event budgets), no regeneration\",\n  \"cpus\": {},\n  \
         \"baseline_pre_pr\": {{\"events_per_s_16k\": {}, \"engine\": \
         \"BinaryHeap queue, global StdRng, unbatched draws (PR 4 tree, best of 5)\"}},\n  \
         \"headline\": {{\"single_shard_events_per_s_16k\": {}, \"queue\": \"{}\", \
         \"speedup_vs_pre_pr\": {}}},\n  \"ladder\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "default" },
        cpus,
        json_f64(PRE_PR_EVENTS_PER_S_16K),
        json_f64(best16.single_rate),
        best_name,
        json_f64(speedup),
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
