//! Perf trajectory of the whole-overlay DES hot loop, serialized to
//! `BENCH_des.json` at the repository root — the simulation-side
//! counterpart of `BENCH_markov.json`.
//!
//! Drives `pollux::des_overlay` over the `des_at_scale` ladder
//! (2¹⁴ = 16k, 2¹⁷ = 131k and 2²⁰ ≈ 1M clusters — ≈1.6·10⁵ to ≈10⁷
//! nodes — the absorption workload: every cluster runs to absorption
//! under a non-binding per-cluster budget, no regeneration) and records
//! events/second:
//!
//! * **single shard** — the raw hot-loop number, comparable against the
//!   recorded pre-PR baseline (`BinaryHeap` future-event list, one
//!   global RNG, per-event exponential draws);
//! * **sharded** — one shard per available core, with per-shard and
//!   aggregate rates, so a multi-core run produces the worker-pool
//!   scaling number the ROADMAP asked for (this container has
//!   `available_parallelism` CPUs; the JSON records the count).
//!
//! Both runs must produce byte-identical reports (asserted here, on top
//! of the test suite).
//!
//! Each rung also records a `memory` block: the exact analytic byte
//! audit from `pollux::des_overlay::des_memory_audit` (arena, hot
//! records, membership, event queue, accumulators → **bytes per node**,
//! identical across platforms) plus the kernel's `VmHWM` peak RSS. Peak
//! RSS is monotonic over the process, so it reflects the largest rung
//! run *so far*; per-rung structure sizes come from the audit.
//!
//! Environment switches:
//!
//! * `POLLUX_BENCH_QUICK=1` — CI smoke: 16k clusters only, two samples.
//!
//! Timings are min-of-N (N = 3): the ladder is deterministic, so the
//! fastest run is the least-perturbed one.

use std::time::Instant;

use pollux::des_overlay::{
    des_memory_audit, run_des_overlay, run_des_overlay_duel_with_stats, DesOverlayConfig,
    DesOverlayReport, DesShardStats,
};
use pollux::{InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;
use pollux_defense::NullDefense;

/// Single-shard events/s of the 16k-cluster ladder point measured on the
/// pre-PR engine (`BinaryHeap` queue, one global `StdRng`, unbatched
/// exponential draws; `examples/des_at_scale` on the PR-4 tree, same
/// workload, best of 5). The headline below reports the current engine
/// relative to this.
const PRE_PR_EVENTS_PER_S_16K: f64 = 3.4e6;

struct LadderPoint {
    bits: u32,
    clusters: usize,
    nodes: u64,
    events: u64,
    single_s: f64,
    single_rate: f64,
    shards: usize,
    sharded_s: f64,
    sharded_rate: f64,
    per_shard_rates: Vec<f64>,
    bytes_per_node: f64,
    audit_json: String,
    peak_rss_bytes: Option<u64>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Best-of-`samples` single-shard run.
fn time_single(
    params: &ModelParams,
    strategy: &TargetedStrategy,
    config: &DesOverlayConfig,
    samples: usize,
) -> (DesOverlayReport, f64) {
    let mut best: Option<(DesOverlayReport, f64)> = None;
    for _ in 0..samples {
        let start = Instant::now();
        let r = run_des_overlay(params, &InitialCondition::Delta, strategy, config, 2011);
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((r, secs));
        }
    }
    best.expect("at least one sample")
}

/// Best-of-`samples` sharded run (fastest aggregate wall clock wins).
fn time_sharded(
    params: &ModelParams,
    strategy: &TargetedStrategy,
    config: &DesOverlayConfig,
    samples: usize,
) -> (DesOverlayReport, DesShardStats, f64) {
    let mut best: Option<(DesOverlayReport, DesShardStats, f64)> = None;
    for _ in 0..samples {
        let start = Instant::now();
        let (r, stats) = run_des_overlay_duel_with_stats(
            params,
            &InitialCondition::Delta,
            strategy,
            &NullDefense::new(),
            config,
            2011,
        );
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, _, b)| secs < *b) {
            best = Some((r, stats, secs));
        }
    }
    best.expect("at least one sample")
}

fn main() {
    let quick = std::env::var_os("POLLUX_BENCH_QUICK").is_some();
    let ladder: &[u32] = if quick { &[14] } else { &[14, 17, 20] };
    let samples = if quick { 2 } else { 3 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = cpus.max(1);

    let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
    let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();

    let mut points = Vec::new();
    for &bits in ladder {
        // The des_at_scale workload: enough budget for every cluster to
        // absorb (unused budget costs nothing without regeneration), so
        // the run exercises the full churn/maintenance mix and processes
        // the same ~13 events/cluster the pre-PR baseline did.
        let config = DesOverlayConfig::new(bits, 1.0, 3_000 << bits);
        let (single, single_s) = time_single(&params, &strategy, &config, samples);
        let sharded_config = config.clone().with_shards(shards);
        let (sharded, stats, sharded_s) =
            time_sharded(&params, &strategy, &sharded_config, samples);
        assert_eq!(single, sharded, "sharding must never change the bytes");

        let audit = des_memory_audit(&params, &config);
        let point = LadderPoint {
            bits,
            clusters: single.n_clusters,
            nodes: single.initial_nodes,
            events: single.events,
            single_s,
            single_rate: single.events as f64 / single_s,
            shards: stats.shards(),
            sharded_s,
            sharded_rate: sharded.events as f64 / sharded_s,
            per_shard_rates: stats.shard_events_per_sec(),
            bytes_per_node: audit.bytes_per_node(),
            audit_json: audit.to_json(),
            // Read *after* the rung's runs so it covers them; monotonic.
            peak_rss_bytes: pollux_obs::mem::peak_rss_bytes(),
        };
        let per_shard: Vec<String> = point
            .per_shard_rates
            .iter()
            .map(|r| format!("{:.2}M", r / 1e6))
            .collect();
        println!(
            "2^{} = {} clusters ({} nodes): 1 shard {:.1}M events/s ({:.3} s); \
             {} shards {:.1}M events/s aggregate ({:.3} s, {:.2}x), per shard [{}]",
            point.bits,
            point.clusters,
            point.nodes,
            point.single_rate / 1e6,
            point.single_s,
            point.shards,
            point.sharded_rate / 1e6,
            point.sharded_s,
            point.single_s / point.sharded_s,
            per_shard.join(", "),
        );
        println!(
            "    memory: {:.1} B/node audited, peak RSS {}",
            point.bytes_per_node,
            point.peak_rss_bytes.map_or("n/a".to_string(), |b| format!(
                "{:.1} MiB",
                b as f64 / (1024.0 * 1024.0)
            )),
        );
        points.push(point);
    }

    let p16 = points
        .iter()
        .find(|p| p.bits == 14)
        .expect("16k point is on every ladder");
    let speedup = p16.single_rate / PRE_PR_EVENTS_PER_S_16K;
    println!(
        "\nheadline @ 16k clusters: {:.1}M events/s single shard — {speedup:.2}x the \
         pre-PR hot loop ({:.1}M events/s)",
        p16.single_rate / 1e6,
        PRE_PR_EVENTS_PER_S_16K / 1e6,
    );

    // Serialize the trajectory. Timings are measurements (not part of any
    // determinism contract); structural fields are exact.
    let mut rows = Vec::new();
    for p in &points {
        let per_shard: Vec<String> = p.per_shard_rates.iter().map(|&r| json_f64(r)).collect();
        let peak = p
            .peak_rss_bytes
            .map_or("null".to_string(), |b| b.to_string());
        rows.push(format!(
            "    {{\"cluster_bits\": {}, \"clusters\": {}, \"nodes\": {}, \"events\": {}, \
             \"single_shard_s\": {}, \"single_shard_events_per_s\": {}, \"shards\": {}, \
             \"sharded_s\": {}, \"sharded_events_per_s\": {}, \
             \"per_shard_events_per_s\": [{}], \
             \"memory\": {{\"bytes_per_node\": {}, \"peak_rss_bytes\": {}, \"audit\": {}}}}}",
            p.bits,
            p.clusters,
            p.nodes,
            p.events,
            json_f64(p.single_s),
            json_f64(p.single_rate),
            p.shards,
            json_f64(p.sharded_s),
            json_f64(p.sharded_rate),
            per_shard.join(", "),
            json_f64(p.bytes_per_node),
            peak,
            p.audit_json,
        ));
    }
    let json = format!(
        "{{\n  \"suite\": \"des_overlay\",\n  \"mode\": \"{}\",\n  \
         \"model\": \"C=7, Delta=7, k=1, mu=0.25, d=0.9, initial=delta, lambda=1, \
         run-to-absorption (non-binding 3000-event budgets), no regeneration\",\n  \"cpus\": {},\n  \
         \"baseline_pre_pr\": {{\"events_per_s_16k\": {}, \"engine\": \
         \"BinaryHeap queue, global StdRng, unbatched draws (PR 4 tree, best of 5)\"}},\n  \
         \"headline\": {{\"single_shard_events_per_s_16k\": {}, \
         \"speedup_vs_pre_pr\": {}}},\n  \"ladder\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "default" },
        cpus,
        json_f64(PRE_PR_EVENTS_PER_S_16K),
        json_f64(p16.single_rate),
        json_f64(speedup),
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
