//! Benchmarks the event-level Monte-Carlo simulator (trajectories per
//! second at the paper's parameters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pollux::simulation::ClusterSimulator;
use pollux::{ClusterState, ModelParams};
use pollux_adversary::TargetedStrategy;
use rand::{rngs::StdRng, SeedableRng};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    for (mu, d, k) in [(0.2, 0.9, 1usize), (0.3, 0.9, 7)] {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(k)
            .expect("valid k");
        let strategy = TargetedStrategy::new(k, params.nu()).expect("valid strategy");
        group.bench_with_input(
            BenchmarkId::new("trajectory", format!("mu={mu},d={d},k={k}")),
            &params,
            |b, p| {
                let mut rng = StdRng::seed_from_u64(42);
                let sim = ClusterSimulator::new(p, &strategy);
                b.iter(|| black_box(sim.run(ClusterState::new(3, 0, 0), &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
