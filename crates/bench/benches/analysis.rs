//! Benchmarks the analytical metrics (Relations 5–9): censored-chain
//! solves, sojourn series and absorption probabilities.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pollux::{ClusterAnalysis, ClusterChain, InitialCondition, ModelParams};

fn bench_analysis(c: &mut Criterion) {
    let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
    let chain = ClusterChain::build(&params);

    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    group.bench_function("prepare (LU factorizations)", |b| {
        b.iter(|| {
            black_box(
                ClusterAnalysis::from_chain(chain.clone(), InitialCondition::Delta).expect("valid"),
            )
        })
    });

    let analysis = ClusterAnalysis::from_chain(chain.clone(), InitialCondition::Delta)
        .expect("valid parameters");
    group.bench_function("expected totals (Rel. 5-6)", |b| {
        b.iter(|| {
            black_box(analysis.expected_safe_events().expect("solvable"));
            black_box(analysis.expected_polluted_events().expect("solvable"));
        })
    });
    group.bench_function("sojourn series n=10 (Rel. 7-8)", |b| {
        b.iter(|| black_box(analysis.successive_safe_sojourns(10)))
    });
    group.bench_function("absorption split (Rel. 9)", |b| {
        b.iter(|| black_box(analysis.absorption_split().expect("solvable")))
    });
    group.bench_function("distribution of T_S to j=500", |b| {
        b.iter(|| black_box(analysis.safe_time_distribution(500)))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
