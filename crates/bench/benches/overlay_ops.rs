//! Benchmarks the overlay substrate: cluster operations (join / leave
//! maintenance / split / merge), responsible-cluster lookup and greedy
//! prefix routing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pollux_overlay::{
    ops, routing, Cluster, ClusterParams, Label, Member, NodeId, Overlay, PeerId,
};
use rand::{rngs::StdRng, SeedableRng};

fn member(i: u64, malicious: bool) -> Member {
    Member {
        peer: PeerId(i),
        malicious,
        id: NodeId::from_data(&i.to_be_bytes()),
    }
}

fn cluster(base: u64, params: ClusterParams, spares: usize) -> Cluster {
    let core: Vec<Member> = (0..params.core_size() as u64)
        .map(|i| member(base + i, false))
        .collect();
    let spare: Vec<Member> = (0..spares as u64)
        .map(|i| member(base + 100 + i, i % 3 == 0))
        .collect();
    Cluster::new(Label::root(), params, core, spare).expect("well-formed test cluster")
}

/// A balanced overlay with 2^depth leaves.
fn overlay(depth: usize) -> Overlay {
    let params = ClusterParams::new(4, 8).unwrap();
    let mut clusters = Vec::new();
    for leaf in 0..(1usize << depth) {
        let bits: Vec<bool> = (0..depth)
            .map(|b| (leaf >> (depth - 1 - b)) & 1 == 1)
            .collect();
        let label = Label::from_bits(bits);
        let base = (leaf as u64 + 1) * 1000;
        let core: Vec<Member> = (0..4).map(|i| member(base + i, false)).collect();
        let spare: Vec<Member> = (0..3).map(|i| member(base + 50 + i, false)).collect();
        clusters.push(Cluster::new(label, params, core, spare).expect("well-formed"));
    }
    Overlay::bootstrap(params, clusters).expect("balanced tree covers the space")
}

fn bench_ops(c: &mut Criterion) {
    let params = ClusterParams::new(7, 7).unwrap();
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("overlay_ops");
    group.bench_function("leave_core_randomized k=1", |b| {
        b.iter_batched(
            || cluster(0, params, 4),
            |mut cl| {
                ops::leave_core_randomized(&mut cl, PeerId(0), 1, &mut rng).expect("valid");
                black_box(cl)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("leave_core_randomized k=7", |b| {
        b.iter_batched(
            || cluster(0, params, 4),
            |mut cl| {
                ops::leave_core_randomized(&mut cl, PeerId(0), 7, &mut rng).expect("valid");
                black_box(cl)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    let ov = overlay(6); // 64 leaves
    group.bench_function("responsible lookup (64 clusters)", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = NodeId::from_data(&i.to_be_bytes());
            black_box(ov.responsible(&id).label().clone())
        })
    });
    group.bench_function("greedy route (64 clusters)", |b| {
        let labels = ov.labels();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = NodeId::from_data(&i.to_be_bytes());
            let from = &labels[(i as usize) % labels.len()];
            black_box(routing::route(&ov, from, &id, &|_| false).expect("routes"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
