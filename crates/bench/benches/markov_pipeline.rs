//! Perf trajectory of the analytical pipeline: dense vs sparse across a
//! Δ ladder, serialized to `BENCH_markov.json` at the repository root.
//!
//! The paper's own evaluation stops at Δ = 7 (288 states). This bench
//! drives `ClusterChain::build` and the full `ClusterAnalysis` battery
//! (sojourns, absorption split, pollution probability) through both
//! pipelines:
//!
//! * **dense** — the historical path: densified matrix, LU factorization,
//!   O(n²) memory / O(n³) time. Only run up to `DENSE_CAP` states.
//! * **sparse** — CSR transition chains and the crossover-aware
//!   `TransientSolver` (BiCGSTAB with SOR/Gauss–Seidel fallback),
//!   O(nnz) memory.
//!
//! Environment switches:
//!
//! * `POLLUX_BENCH_QUICK=1` — CI smoke: the smallest ladder, one sample
//!   per point (compile + run in seconds).
//! * `POLLUX_BENCH_FULL=1` — extends the sparse ladder to Δ = 156
//!   (~10⁵ states).

use criterion::{BenchmarkId, Criterion};
use pollux::{AnalysisMode, ClusterAnalysis, ClusterChain, InitialCondition, ModelParams};
use pollux_defense::InducedChurn;
use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::{SolverOptions, TransientSolver};
use pollux_markov::classify::classify_sparse;

/// Largest state count the dense pipeline is asked to handle (the n²
/// matrix alone is ~27 MiB here; the LU grows cubically).
const DENSE_CAP: usize = 2_000;

fn params_for(delta: usize) -> ModelParams {
    ModelParams::new(7, delta, 1)
        .expect("valid ladder parameters")
        .with_mu(0.2)
        .with_d(0.8)
}

struct LadderPoint {
    delta: usize,
    states: usize,
    nnz: usize,
    dense_matrix_bytes: u64,
    sparse_matrix_bytes: u64,
    build_s: f64,
    dense_s: Option<f64>,
    sparse_s: f64,
    /// Full analytic duel (defense-folded chain build + sparse battery +
    /// steady-state fractions) under `InducedChurn(0.1)`.
    duel_s: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::var_os("POLLUX_BENCH_QUICK").is_some();
    let full = std::env::var_os("POLLUX_BENCH_FULL").is_some();
    let deltas: &[usize] = if quick {
        &[7, 20, 48]
    } else if full {
        &[7, 14, 20, 48, 70, 100, 140, 156]
    } else {
        &[7, 14, 20, 48, 100]
    };
    let samples = if quick { 2 } else { 3 };

    let mut criterion = Criterion::default();
    let mut points = Vec::new();

    for &delta in deltas {
        let params = params_for(delta);
        let chain = ClusterChain::build(&params);
        let states = chain.space().len();
        let nnz = chain.sparse_dtmc().matrix().nnz();
        // values + column indices + row offsets vs the dense n² block.
        let sparse_matrix_bytes = (nnz * 16 + (states + 1) * 8) as u64;
        let dense_matrix_bytes = (states * states * 8) as u64;

        let mut group = criterion.benchmark_group("markov_pipeline");
        group.sample_size(samples);
        group.bench_with_input(BenchmarkId::new("build", delta), &params, |b, p| {
            b.iter(|| ClusterChain::build(p))
        });
        if states <= DENSE_CAP {
            group.bench_with_input(BenchmarkId::new("analyze_dense", delta), &params, |b, p| {
                b.iter(|| {
                    ClusterAnalysis::new_with_mode(p, InitialCondition::Delta, AnalysisMode::Dense)
                        .map(|a| {
                            (
                                a.expected_safe_events().unwrap(),
                                a.expected_polluted_events().unwrap(),
                                a.absorption_split().unwrap(),
                                a.pollution_probability().unwrap(),
                            )
                        })
                        .unwrap()
                })
            });
        }
        group.bench_with_input(
            BenchmarkId::new("analyze_sparse", delta),
            &params,
            |b, p| {
                b.iter(|| {
                    ClusterAnalysis::new_with_mode(p, InitialCondition::Delta, AnalysisMode::Sparse)
                        .map(|a| {
                            (
                                a.expected_safe_events().unwrap(),
                                a.expected_polluted_events().unwrap(),
                                a.absorption_split().unwrap(),
                                a.pollution_probability().unwrap(),
                            )
                        })
                        .unwrap()
                })
            },
        );
        // The analytic half of a duel at this state-space size: the
        // defense-folded chain goes through the same sparse battery, so
        // countermeasure sweeps ride the perf trajectory too.
        group.bench_with_input(BenchmarkId::new("analyze_duel", delta), &params, |b, p| {
            let defense = InducedChurn::new(0.1).unwrap();
            b.iter(|| {
                let chain = ClusterChain::build_with_defense(p, &defense);
                ClusterAnalysis::from_chain_with_mode(
                    chain,
                    InitialCondition::Delta,
                    AnalysisMode::Sparse,
                )
                .map(|a| a.steady_state_fractions().unwrap())
                .unwrap()
            })
        });
        group.finish();

        let results = criterion.take_results();
        let mean_of = |suffix: &str| {
            results
                .iter()
                .find(|r| r.id == format!("markov_pipeline/{suffix}/{delta}"))
                .map(|r| r.mean_s)
        };
        points.push(LadderPoint {
            delta,
            states,
            nnz,
            dense_matrix_bytes,
            sparse_matrix_bytes,
            build_s: mean_of("build").expect("build benchmark ran"),
            dense_s: mean_of("analyze_dense"),
            sparse_s: mean_of("analyze_sparse").expect("sparse benchmark ran"),
            duel_s: mean_of("analyze_duel").expect("duel benchmark ran"),
        });
    }

    // The BiCGSTAB Jacobi-preconditioner lever (the ROADMAP's named
    // remaining perf item for Δ ≳ 300 state spaces): extract the
    // transient block of the Δ = 100 chain (Δ = 48 in quick mode) and
    // time the two canonical solves of the battery — expected absorption
    // events `(I − Q) x = 1` and the transposed visit-count system —
    // with the preconditioner off and on. Seconds cover setup plus both
    // solves; the recorded Krylov iteration counts are the forward
    // solve's (the transposed path reports no separate stats).
    let precond_delta = if quick { 48 } else { 100 };
    let precond_params = params_for(precond_delta);
    let precond_chain = ClusterChain::build(&precond_params);
    let sparse = precond_chain.sparse_dtmc();
    let transient = classify_sparse(sparse).transient_states();
    let mut to_local = vec![usize::MAX; sparse.n_states()];
    for (i, &g) in transient.iter().enumerate() {
        to_local[g] = i;
    }
    let mut triplets = Vec::new();
    for (i, &g) in transient.iter().enumerate() {
        for (j, v) in sparse.successors(g) {
            if to_local[j] != usize::MAX {
                triplets.push((i, to_local[j], v));
            }
        }
    }
    let nt = transient.len();
    let q = CsrMatrix::from_triplet_vec(nt, nt, triplets).expect("transient block is well-formed");
    let ones = vec![1.0; nt];
    let mut group = criterion.benchmark_group("markov_pipeline");
    group.sample_size(samples);
    for (name, jacobi) in [("bicgstab_plain", false), ("bicgstab_jacobi", true)] {
        group.bench_with_input(BenchmarkId::new(name, precond_delta), &q, |b, q| {
            b.iter(|| {
                let solver =
                    TransientSolver::new(q, SolverOptions::force_sparse().with_jacobi(jacobi))
                        .unwrap();
                let x = solver.solve(&ones).unwrap();
                let y = solver.solve_transposed(&ones).unwrap();
                (x, y)
            })
        });
    }
    group.finish();
    let precond_results = criterion.take_results();
    let precond_mean = |suffix: &str| {
        precond_results
            .iter()
            .find(|r| r.id == format!("markov_pipeline/{suffix}/{precond_delta}"))
            .map(|r| r.mean_s)
            .expect("preconditioner benchmark ran")
    };
    let absorption_plain_s = precond_mean("bicgstab_plain");
    let absorption_jacobi_s = precond_mean("bicgstab_jacobi");
    let sweeps_of = |jacobi: bool| {
        let solver = TransientSolver::new(&q, SolverOptions::force_sparse().with_jacobi(jacobi))
            .expect("transient block");
        let (_, stats) = solver.solve_with_stats(&ones).expect("solves");
        stats.map_or(0, |s| s.sweeps)
    };
    let sweeps_plain = sweeps_of(false);
    let sweeps_jacobi = sweeps_of(true);
    println!(
        "jacobi preconditioner @ delta={precond_delta} ({nt} transient states): \
         (I-Q)x=1 + transposed solve {absorption_plain_s:.4} s plain vs \
         {absorption_jacobi_s:.4} s preconditioned ({:.2}x); forward-solve Krylov \
         iterations {sweeps_plain} vs {sweeps_jacobi}",
        absorption_plain_s / absorption_jacobi_s,
    );

    // Headline numbers at the largest Δ the dense pipeline still handles.
    let crossover_point = points
        .iter()
        .rev()
        .find(|p| p.dense_s.is_some())
        .expect("at least one dense point");
    let dense_s = crossover_point.dense_s.expect("checked above");
    let speedup =
        (crossover_point.build_s + dense_s) / (crossover_point.build_s + crossover_point.sparse_s);
    let memory_ratio =
        crossover_point.dense_matrix_bytes as f64 / crossover_point.sparse_matrix_bytes as f64;
    println!(
        "\nheadline @ delta={} ({} states): build+solve speedup {speedup:.1}x, \
         matrix memory ratio {memory_ratio:.1}x (dense {} B vs sparse {} B)",
        crossover_point.delta,
        crossover_point.states,
        crossover_point.dense_matrix_bytes,
        crossover_point.sparse_matrix_bytes,
    );
    let largest = points.last().expect("ladder is non-empty");
    println!(
        "largest sparse point: delta={} ({} states, {} nnz) analyzed in {:.2} s",
        largest.delta, largest.states, largest.nnz, largest.sparse_s,
    );

    // Serialize the trajectory point. Timings are measurements (not part
    // of any determinism contract); structural fields are exact.
    let mut rows = Vec::new();
    for p in &points {
        rows.push(format!(
            "    {{\"delta\": {}, \"states\": {}, \"nnz\": {}, \"dense_matrix_bytes\": {}, \
             \"sparse_matrix_bytes\": {}, \"build_s\": {}, \"analyze_dense_s\": {}, \
             \"analyze_sparse_s\": {}, \"analyze_duel_s\": {}}}",
            p.delta,
            p.states,
            p.nnz,
            p.dense_matrix_bytes,
            p.sparse_matrix_bytes,
            json_f64(p.build_s),
            p.dense_s.map(json_f64).unwrap_or_else(|| "null".into()),
            json_f64(p.sparse_s),
            json_f64(p.duel_s),
        ));
    }
    let json = format!(
        "{{\n  \"suite\": \"markov_pipeline\",\n  \"mode\": \"{}\",\n  \
         \"model\": \"C=7, k=1, mu=0.2, d=0.8, initial=delta\",\n  \
         \"headline\": {{\"delta\": {}, \"states\": {}, \"build_plus_solve_speedup\": {}, \
         \"matrix_memory_ratio\": {}}},\n  \
         \"bicgstab_jacobi\": {{\"delta\": {}, \"transient_states\": {}, \
         \"solve_plain_s\": {}, \"solve_jacobi_s\": {}, \"speedup\": {}, \
         \"forward_iters_plain\": {}, \"forward_iters_jacobi\": {}}},\n  \
         \"ladder\": [\n{}\n  ]\n}}\n",
        if quick {
            "quick"
        } else if full {
            "full"
        } else {
            "default"
        },
        crossover_point.delta,
        crossover_point.states,
        json_f64(speedup),
        json_f64(memory_ratio),
        precond_delta,
        nt,
        json_f64(absorption_plain_s),
        json_f64(absorption_jacobi_s),
        json_f64(absorption_plain_s / absorption_jacobi_s),
        sweeps_plain,
        sweeps_jacobi,
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_markov.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
