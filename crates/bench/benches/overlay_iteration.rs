//! Benchmarks the Theorem-2 vector iteration — the Figure-5 kernel
//! (`α (T/n + (1−1/n) I)^m` over the sparse transient block).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pollux::{InitialCondition, ModelParams, OverlayModel};

fn bench_iteration(c: &mut Criterion) {
    let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
    let model = OverlayModel::new(&params, InitialCondition::Delta, 500).expect("valid parameters");

    let mut group = c.benchmark_group("overlay_iteration");
    group.sample_size(10);
    for m in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("events", m), &m, |b, &m| {
            b.iter(|| black_box(model.proportion_series(&[m]).expect("evaluates")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
