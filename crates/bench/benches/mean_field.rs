//! Perf trajectory of the mean-field (fluid-limit) layer, serialized to
//! `BENCH_meanfield.json` at the repository root — the N→∞ counterpart
//! of `BENCH_markov.json` and `BENCH_des.json`.
//!
//! Three sections:
//!
//! * **equilibrium ladder** — `FluidModel::build` + `open_equilibrium`
//!   across a Δ ladder: the cost of pricing one stationary profile on
//!   the sparse renewal path, per state-space size.
//! * **planet-scale what-if** — `planet_scale_what_if` at 10⁸ and 10⁹
//!   nodes (equilibrium + node-weighted pollution + spectral-gap
//!   stability in one call). The acceptance bar is < 1 ms per cell: the
//!   fluid limit answers questions no finite-state engine can even
//!   represent, in microseconds.
//! * **control tuning vs legacy grid** — `tune_induced_churn`
//!   (mean-field bisection + one exact-chain verification) against the
//!   pre-PR `defense_frontier` idiom: an exact-chain scan over an
//!   equal-resolution rate grid with the same early-exit at the first
//!   passing rate. The recorded speedup is the number EXPERIMENTS.md
//!   cites.
//!
//! Environment switches:
//!
//! * `POLLUX_BENCH_QUICK=1` — CI smoke: smallest ladder, two samples.
//!
//! Timings are min-of-N (N = 3): every section is deterministic, so the
//! fastest run is the least-perturbed one.

use std::time::Instant;

use pollux::{AnalysisMode, ClusterAnalysis, ClusterChain, InitialCondition, ModelParams};
use pollux_defense::InducedChurn;
use pollux_meanfield::{
    planet_scale_what_if, tune_induced_churn, FluidModel, TuningConfig, WhatIfAnswer,
};

fn params_for(delta: usize) -> ModelParams {
    ModelParams::new(7, delta, 1)
        .expect("valid ladder parameters")
        .with_mu(0.2)
        .with_d(0.9)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Seconds-resolution formatting loses the microsecond story; emit the
/// raw seconds with enough digits for sub-microsecond cells.
fn json_secs(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// Min-of-`samples` wall clock of `f`, returning the last result too.
fn time_best<T>(samples: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..samples {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (out.expect("at least one sample"), best)
}

struct LadderPoint {
    delta: usize,
    states: usize,
    build_s: f64,
    solve_s: f64,
    residual: f64,
}

struct WhatIfPoint {
    nodes: f64,
    cell_s: f64,
    answer: WhatIfAnswer,
}

fn main() {
    let quick = std::env::var_os("POLLUX_BENCH_QUICK").is_some();
    let samples = if quick { 2 } else { 3 };
    let deltas: &[usize] = if quick { &[7, 20] } else { &[7, 20, 48, 100] };

    // ── 1. equilibrium ladder ────────────────────────────────────────
    let mut ladder = Vec::new();
    for &delta in deltas {
        let params = params_for(delta);
        let (model, build_s) = time_best(samples, || {
            FluidModel::build(&params, &InitialCondition::Delta).expect("ladder model builds")
        });
        let states = model.alpha().len();
        let (eq, solve_s) = time_best(samples, || {
            model.open_equilibrium().expect("open equilibrium solves")
        });
        println!(
            "equilibrium delta={delta} ({states} states): build {build_s:.6} s, \
             solve {solve_s:.6} s, residual {:.3e}",
            eq.residual,
        );
        ladder.push(LadderPoint {
            delta,
            states,
            build_s,
            solve_s,
            residual: eq.residual,
        });
    }

    // ── 2. planet-scale what-if ──────────────────────────────────────
    let paper = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
    let mut what_ifs = Vec::new();
    for &nodes in &[1e8, 1e9] {
        let (answer, cell_s) = time_best(samples, || {
            planet_scale_what_if(&paper, &InitialCondition::Delta, nodes, 1.0)
                .expect("planet-scale cell answers")
        });
        println!(
            "what-if nodes={nodes:.0e}: {:.1} polluted nodes expected \
             (node fraction {:.3e}), settling time {:.2}, {:.1} µs/cell",
            answer.expected_polluted_nodes,
            answer.polluted_node_fraction,
            answer.settling_time,
            cell_s * 1e6,
        );
        what_ifs.push(WhatIfPoint {
            nodes,
            cell_s,
            answer,
        });
    }
    let billion = what_ifs.last().expect("what-if ladder is non-empty");
    let sub_ms = billion.cell_s < 1e-3;
    println!(
        "headline: 10⁹-node what-if (equilibrium + stability) in {:.1} µs \
         — {} the 1 ms acceptance bar",
        billion.cell_s * 1e6,
        if sub_ms { "under" } else { "OVER" },
    );

    // ── 3. control tuning vs the legacy exact-chain grid ─────────────
    let cfg = TuningConfig {
        threshold: 0.01,
        max_rate: 0.5,
        rate_tol: 0.01,
    };
    let (outcome, bisection_s) = time_best(samples, || {
        tune_induced_churn(&paper, &InitialCondition::Delta, &cfg).expect("tuning succeeds")
    });

    // The pre-PR `defense_frontier` idiom at the same resolution: an
    // exact-chain evaluation per grid rate (spacing = `rate_tol`),
    // stopping at the first rate under the threshold — exactly the old
    // sweep arm, minus the engine plumbing around it.
    let grid_points = (cfg.max_rate / cfg.rate_tol).round() as usize;
    let ((grid_rate, grid_scanned), grid_s) = time_best(samples, || {
        let baseline =
            ClusterAnalysis::new(&paper, InitialCondition::Delta).expect("baseline chain analyzes");
        let (_, baseline_polluted) = baseline
            .steady_state_fractions()
            .expect("baseline fractions");
        let mut scanned = 1u64;
        if baseline_polluted <= cfg.threshold {
            return (0.0, scanned);
        }
        for i in 1..=grid_points {
            scanned += 1;
            let rate = i as f64 * cfg.rate_tol;
            let defense = InducedChurn::new(rate).expect("grid rate is in domain");
            let chain = ClusterChain::build_with_defense(&paper, &defense);
            let a = ClusterAnalysis::from_chain_with_mode(
                chain,
                InitialCondition::Delta,
                AnalysisMode::Sparse,
            )
            .expect("grid chain analyzes");
            let (_, polluted) = a.steady_state_fractions().expect("grid fractions");
            if polluted <= cfg.threshold {
                return (rate, scanned);
            }
        }
        (-1.0, scanned)
    });
    let speedup = grid_s / bisection_s;
    println!(
        "control tuning: bisection {:.4} s ({} fluid evaluations, frontier rate \
         {:.4}, verified_ok={}) vs legacy exact grid {:.4} s ({} chain solves, \
         frontier rate {:.4}) — {speedup:.1}x",
        bisection_s,
        outcome.evaluations,
        outcome.rate,
        outcome.verified_ok,
        grid_s,
        grid_scanned,
        grid_rate,
    );

    // ── serialize ────────────────────────────────────────────────────
    let ladder_rows: Vec<String> = ladder
        .iter()
        .map(|p| {
            format!(
                "    {{\"delta\": {}, \"states\": {}, \"build_s\": {}, \"solve_s\": {}, \
                 \"residual\": {}}}",
                p.delta,
                p.states,
                json_secs(p.build_s),
                json_secs(p.solve_s),
                format_args!("{:.3e}", p.residual),
            )
        })
        .collect();
    let what_if_rows: Vec<String> = what_ifs
        .iter()
        .map(|p| {
            format!(
                "    {{\"nodes\": {:.0}, \"cell_s\": {}, \"n_clusters\": {}, \
                 \"mean_cluster_size\": {}, \"polluted_node_fraction\": {}, \
                 \"expected_polluted_nodes\": {}, \"spectral_gap\": {}, \
                 \"settling_time\": {}, \"finite_size_band\": {}}}",
                p.nodes,
                json_secs(p.cell_s),
                json_f64(p.answer.n_clusters),
                json_f64(p.answer.mean_cluster_size),
                format_args!("{:.6e}", p.answer.polluted_node_fraction),
                json_f64(p.answer.expected_polluted_nodes),
                json_f64(p.answer.spectral_gap),
                json_f64(p.answer.settling_time),
                format_args!("{:.6e}", p.answer.finite_size_band),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"suite\": \"mean_field\",\n  \"mode\": \"{}\",\n  \
         \"model\": \"C=7, k=1, mu=0.2, d=0.9, initial=delta\",\n  \
         \"headline\": {{\"what_if_nodes\": 1e9, \"cell_s\": {}, \"under_1ms\": {}, \
         \"tuning_speedup\": {}}},\n  \
         \"tuning\": {{\"threshold\": {}, \"max_rate\": {}, \"rate_tol\": {}, \
         \"bisection_s\": {}, \"fluid_evaluations\": {}, \"tuned_rate\": {}, \
         \"verified_ok\": {}, \"grid_s\": {}, \"grid_solves\": {}, \
         \"grid_rate\": {}, \"speedup\": {}}},\n  \
         \"what_if\": [\n{}\n  ],\n  \
         \"equilibrium_ladder\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "default" },
        json_secs(billion.cell_s),
        sub_ms,
        json_f64(speedup),
        json_f64(cfg.threshold),
        json_f64(cfg.max_rate),
        json_f64(cfg.rate_tol),
        json_secs(bisection_s),
        outcome.evaluations,
        json_f64(outcome.rate),
        outcome.verified_ok,
        json_secs(grid_s),
        grid_scanned,
        json_f64(grid_rate),
        json_f64(speedup),
        what_if_rows.join(",\n"),
        ladder_rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_meanfield.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    assert!(
        outcome.verified_ok,
        "the exact chain disagrees with the tuned frontier"
    );
    // The budget is enforced in the default/full modes only: the quick
    // (CI smoke) mode runs on shared runners where wall-clock asserts
    // flake; the JSON still records the measurement either way.
    assert!(
        sub_ms || quick,
        "10⁹-node what-if took {:.3} ms (budget: 1 ms)",
        billion.cell_s * 1e3
    );
}
