//! Benchmarks the from-scratch SHA-256 / HMAC and identifier derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pollux_overlay::{hash, NodeId};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("digest", size), &data, |b, d| {
            b.iter(|| black_box(hash::sha256(d)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("identifiers");
    let id0 = NodeId::from_data(b"bench peer");
    group.bench_function("derive_incarnation", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(id0.derive_incarnation(k))
        })
    });
    group.bench_function("hmac_sha256 (64B msg)", |b| {
        let key = [7u8; 32];
        let msg = [1u8; 64];
        b.iter(|| black_box(hash::hmac_sha256(&key, &msg)))
    });
    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
