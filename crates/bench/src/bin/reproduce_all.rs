//! One-shot reproduction: computes every table and figure of the paper and
//! writes machine-readable TSV files under `results/` (plus a summary to
//! stdout). See EXPERIMENTS.md for the paper-vs-measured discussion.

use std::fs;
use std::io::Write;
use std::path::Path;

use pollux::experiments;
use pollux::InitialCondition;
use pollux_bench::banner;

fn write_tsv(path: &Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir)?;
    banner("Reproducing every table and figure into results/");

    // Figure 3: all four panels.
    for (initial, tag) in [
        (InitialCondition::Delta, "delta"),
        (InitialCondition::Beta, "beta"),
    ] {
        for k in [1usize, 7] {
            let cells = experiments::figure3_panel(k, &initial)?;
            let rows: Vec<String> = cells
                .iter()
                .map(|c| format!("{}\t{}\t{:.6}\t{:.6}", c.d, c.mu, c.expected_safe, c.expected_polluted))
                .collect();
            let path = out_dir.join(format!("fig3_protocol{k}_{tag}.tsv"));
            write_tsv(&path, "d\tmu\tE_T_S\tE_T_P", &rows)?;
            println!("wrote {}", path.display());
        }
    }

    // Table I.
    let rows: Vec<String> = experiments::table1()?
        .iter()
        .map(|c| format!("{}\t{}\t{:.6}\t{:.6e}", c.mu, c.d, c.expected_safe, c.expected_polluted))
        .collect();
    let path = out_dir.join("table1.tsv");
    write_tsv(&path, "mu\td\tE_T_S\tE_T_P", &rows)?;
    println!("wrote {}", path.display());

    // Table II.
    let rows: Vec<String> = experiments::table2()?
        .iter()
        .map(|r| {
            format!(
                "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
                r.mu, r.safe_1, r.safe_2, r.polluted_1, r.polluted_2
            )
        })
        .collect();
    let path = out_dir.join("table2.tsv");
    write_tsv(&path, "mu\tE_T_S1\tE_T_S2\tE_T_P1\tE_T_P2", &rows)?;
    println!("wrote {}", path.display());

    // Figure 4: both panels.
    for (initial, tag) in [
        (InitialCondition::Delta, "delta"),
        (InitialCondition::Beta, "beta"),
    ] {
        let cells = experiments::figure4_panel(&initial)?;
        let rows: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{}\t{}\t{:.6}\t{:.6}\t{:.6}",
                    c.d, c.mu, c.split.safe_merge, c.split.safe_split, c.split.polluted_merge
                )
            })
            .collect();
        let path = out_dir.join(format!("fig4_{tag}.tsv"));
        write_tsv(&path, "d\tmu\tp_safe_merge\tp_safe_split\tp_polluted_merge", &rows)?;
        println!("wrote {}", path.display());
    }

    // Figure 5: inferred paper setting mu = 25% plus the sweep values.
    let sample_points = experiments::figure5_sample_points();
    for &mu in &[0.10, 0.20, 0.25, 0.30] {
        let mut rows = Vec::with_capacity(sample_points.len());
        let mut columns = Vec::new();
        for &(n, d) in &[(500u64, 0.3), (500, 0.9), (1500, 0.3), (1500, 0.9)] {
            columns.push(experiments::figure5_series(n, d, mu, &sample_points)?);
        }
        for (i, &m) in sample_points.iter().enumerate() {
            let mut row = format!("{m}");
            for col in &columns {
                row.push_str(&format!("\t{:.6}\t{:.6}", col[i].safe, col[i].polluted));
            }
            rows.push(row);
        }
        let path = out_dir.join(format!("fig5_mu{:02.0}.tsv", mu * 100.0));
        write_tsv(
            &path,
            "m\tsafe_n500_d30\tpolluted_n500_d30\tsafe_n500_d90\tpolluted_n500_d90\tsafe_n1500_d30\tpolluted_n1500_d30\tsafe_n1500_d90\tpolluted_n1500_d90",
            &rows,
        )?;
        println!("wrote {}", path.display());
    }

    // Ablation: k-sweep.
    let sweep = experiments::k_sweep(0.3, 0.9, &InitialCondition::Delta)?;
    let rows: Vec<String> = sweep
        .iter()
        .map(|&(k, ts, tp)| format!("{k}\t{ts:.6}\t{tp:.6}"))
        .collect();
    let path = out_dir.join("ablation_k.tsv");
    write_tsv(&path, "k\tE_T_S\tE_T_P", &rows)?;
    println!("wrote {}", path.display());

    println!("\nAll artefacts regenerated. Compare against EXPERIMENTS.md.");
    Ok(())
}
