//! One-shot reproduction: every table and figure of the paper as a
//! **single pooled parallel sweep**, written as machine-readable TSV
//! files (default `results/`, override with `--out-dir`).
//!
//! All cells of all scenarios share one worker pool (`--threads N`), and
//! per-cell seeding is deterministic, so the artefacts are byte-identical
//! regardless of the thread count:
//!
//! ```text
//! cargo run --release -p pollux-bench --bin reproduce_all -- --threads 8
//! ```
//!
//! Add `--extended` for the beyond-paper grids, or positional scenario
//! names for a subset (`--list` shows them all).

use pollux_bench::{banner, parse_cli_or_exit, run_and_emit};
use pollux_sweep::registry::PAPER_ARTEFACTS;

fn main() {
    let mut args = parse_cli_or_exit(
        "reproduce_all",
        "every paper artefact as one parallel sweep writing TSVs",
    );
    let out_dir = args.out_dir.get_or_insert_with(|| "results".into()).clone();
    banner(&format!(
        "Reproducing every table and figure into {}/",
        out_dir.display()
    ));

    let reports = run_and_emit(&args, &PAPER_ARTEFACTS);

    let mut all_ok = true;
    for report in &reports {
        all_ok &= report.all_ok();
        println!("{:<18} {:>6} rows", report.scenario, report.rows.len());
    }
    println!(
        "\nAll artefacts regenerated. Validation scenarios: {}",
        if all_ok { "AGREE" } else { "MISMATCH DETECTED" }
    );
    std::process::exit(i32::from(!all_ok));
}
