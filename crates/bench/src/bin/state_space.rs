//! Reproduces **Figure 1** of the paper: the aggregated view of the
//! Markov chain `X` — the partition of `Ω` into transient safe `S`,
//! transient polluted `P` and the closed classes `AmS`, `AℓS`, `AmP` —
//! including the caption's count ("For C = 7 and Δ = 7, we have 288
//! states") and the unreachability of the polluted-split states.

use pollux::{polluted_split_unreachable, ClusterChain, ModelParams, ModelSpace};
use pollux_bench::banner;

fn main() {
    banner("Figure 1 — state-space partition of the cluster chain");
    for (c, delta) in [(7usize, 7usize), (4, 4), (10, 7), (7, 10)] {
        let params = ModelParams::new(c, delta, 1).expect("valid sizes");
        let space = ModelSpace::new(&params);
        println!(
            "C={c:>2} Δ={delta:>2}: |Ω|={:>4}  S={:>3}  P={:>3}  AmS={:>2}  AlS={:>2}  AmP={:>2}  AlP={:>2}",
            space.len(),
            space.transient_safe().len(),
            space.transient_polluted().len(),
            space.safe_merge().len(),
            space.safe_split().len(),
            space.polluted_merge().len(),
            space.polluted_split().len(),
        );
    }

    banner("Reachability (Rule 2 guarantee)");
    let params = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
    let chain = ClusterChain::build(&params);
    println!(
        "polluted-split states unreachable under the full adversary: {}",
        polluted_split_unreachable(&chain)
    );
    println!(
        "paper caption check: C=7, Δ=7 gives {} states (expected 288)",
        chain.space().len()
    );
}
