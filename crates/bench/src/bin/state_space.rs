//! Reproduces **Figure 1** of the paper: the aggregated view of the
//! Markov chain `X` — the partition of `Ω` into transient safe `S`,
//! transient polluted `P` and the closed classes `AmS`, `AℓS`, `AmP` —
//! including the caption's count ("For C = 7 and Δ = 7, we have 288
//! states") and the unreachability of the polluted-split states — the
//! `state_space` scenario of `pollux-sweep`.

use pollux_bench::{fail_run, parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "state_space",
        "Figure 1: state-space partition across (C, Delta)",
    );
    for report in run_and_emit(&args, &["state_space"]) {
        report_banner(
            &report,
            "state_space",
            "Figure 1 — state-space partition of the cluster chain",
        );
        println!("{}", report.render_text());

        // The caption check only applies to the state-space artefact
        // itself, not to scenarios selected via positional names.
        if report.scenario != "state_space" {
            continue;
        }
        let (Some(c_col), Some(delta_col)) = (report.column("C"), report.column("Delta")) else {
            fail_run("state_space", "report lost its 'C'/'Delta' key columns");
        };
        let Some(paper_row) = report
            .rows
            .iter()
            .position(|r| r[c_col].as_f64() == Some(7.0) && r[delta_col].as_f64() == Some(7.0))
        else {
            fail_run(
                "state_space",
                "the paper's (7, 7) point is missing from the grid",
            );
        };
        println!(
            "paper caption check: C=7, Delta=7 gives {} states (expected 288)",
            report.f64(paper_row, "n_states").unwrap_or(f64::NAN)
        );
        println!(
            "polluted-split states unreachable under the full adversary: {}",
            report
                .bool(paper_row, "polluted_split_unreachable")
                .unwrap_or(false)
        );
    }
}
