//! Extension table (beyond the paper): decomposing the pollution exposure.
//!
//! `E(T_P) = P(ever polluted) × E(T_P | ever polluted)` — the paper reports
//! only the product; the `risk_decomposition` scenario separates the
//! *frequency* of pollution episodes from their *duration*, and adds the
//! steady-state polluted fraction of a regenerating cluster population
//! (renewal–reward).

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "pollution_risk",
        "pollution risk decomposition over (mu, d)",
    );
    let reports = run_and_emit(&args, &["risk_decomposition"]);
    for report in &reports {
        report_banner(
            report,
            "risk_decomposition",
            "Pollution risk decomposition — k = 1, alpha = delta",
        );
        println!("{}", report.render_text());
    }
    if reports.iter().any(|r| r.scenario == "risk_decomposition") {
        println!("Reading: higher d mainly lengthens pollution episodes (duration");
        println!("column) rather than making them more frequent — churn caps how");
        println!("long a captured quorum can be held, exactly the paper's point.");
    }
}
