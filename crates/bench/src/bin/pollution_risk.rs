//! Extension table (beyond the paper): decomposing the pollution exposure.
//!
//! `E(T_P) = P(ever polluted) × E(T_P | ever polluted)` — the paper reports
//! only the product; this harness separates the *frequency* of pollution
//! episodes from their *duration*, and adds the steady-state polluted
//! fraction of a regenerating cluster population (renewal–reward).

use pollux::experiments::render_table;
use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_bench::{banner, fmt_value};

fn main() {
    banner("Pollution risk decomposition — k = 1, alpha = delta");
    let mut rows = Vec::new();
    for &d in &[0.3, 0.8, 0.9, 0.95] {
        for &mu in &[0.1, 0.2, 0.3] {
            let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
            let a = ClusterAnalysis::new(&params, InitialCondition::Delta)
                .expect("paper parameters are valid");
            let e_tp = a.expected_polluted_events().expect("solvable");
            let p_ever = a.pollution_probability().expect("solvable");
            let duration = if p_ever > 0.0 { e_tp / p_ever } else { 0.0 };
            let (_, steady_polluted) = a.steady_state_fractions().expect("solvable");
            rows.push(vec![
                format!("{:.0}%", d * 100.0),
                format!("{:.0}%", mu * 100.0),
                fmt_value(p_ever),
                fmt_value(duration),
                fmt_value(e_tp),
                fmt_value(steady_polluted),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "d",
                "mu",
                "P(ever polluted)",
                "E(T_P | polluted)",
                "E(T_P)",
                "steady polluted frac",
            ],
            &rows
        )
    );
    println!("Reading: higher d mainly lengthens pollution episodes (duration");
    println!("column) rather than making them more frequent — churn caps how");
    println!("long a captured quorum can be held, exactly the paper's point.");
}
