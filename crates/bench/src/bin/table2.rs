//! Reproduces **Table II** of the paper: the expected durations of the
//! first two sojourns in the safe and polluted subsets,
//! `E(T_{S,1})`, `E(T_{S,2})`, `E(T_{P,1})`, `E(T_{P,2})`,
//! for `k = 1`, `C = 7`, `Δ = 7`, `d = 90 %`, `α = δ` — the `table2`
//! scenario of `pollux-sweep`.
//!
//! Paper values (DSN 2011, Table II):
//!
//! ```text
//!            μ=0%   μ=10%   μ=20%   μ=30%
//! E(T_S,1)   12     12.085  11.890  11.570
//! E(T_S,2)   0      0.013   0.033   0.043
//! E(T_P,1)   0      0.099   0.558   1.611
//! E(T_P,2)   0      0.004   0.26    0.075
//! ```

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit("table2", "Table II: successive sojourn expectations");
    let reports = run_and_emit(&args, &["table2"]);
    for report in &reports {
        report_banner(
            report,
            "table2",
            "Table II — successive sojourns; k=1, C=7, Delta=7, d=90%, alpha=delta",
        );
        println!("{}", report.render_text());
    }
    if reports.iter().any(|r| r.scenario == "table2") {
        println!("Paper reference row (mu=20%): 11.890, 0.033, 0.558, 0.26.");
        println!("Lesson: E(T_S) ~= E(T_S,1) and E(T_P) ~= E(T_P,1) — the chain");
        println!("does not alternate between safe and polluted phases.");
    }
}
