//! Validates the **Figure 2** transition matrix: the analytical metrics
//! (Relations 5–9) are compared against the independently-coded
//! event-level Monte-Carlo simulator across a `(μ, d, k)` grid.
//!
//! Agreement within the Monte-Carlo confidence intervals is the
//! reproduction's main internal validity check.

use pollux::simulation::{self};
use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;
use pollux_bench::{banner, fmt_value};

fn main() {
    banner("Model validation — analytical (Figure 2 matrix) vs event-level Monte-Carlo");
    println!(
        "{:>5} {:>5} {:>2} | {:>10} {:>22} | {:>10} {:>22} | {:>7} {:>7}",
        "mu", "d", "k", "E(T_S)", "sim (95% CI)", "E(T_P)", "sim (95% CI)", "p(AmP)", "sim"
    );

    let replications = 40_000;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut all_ok = true;

    for &(mu, d, k) in &[
        (0.0, 0.9, 1usize),
        (0.1, 0.8, 1),
        (0.2, 0.9, 1),
        (0.3, 0.9, 1),
        (0.2, 0.3, 1),
        (0.2, 0.9, 3),
        (0.2, 0.9, 7),
        (0.3, 0.8, 7),
    ] {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(k)
            .expect("grid k is valid");
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)
            .expect("paper parameters are valid");
        let e_ts = analysis.expected_safe_events().expect("solvable");
        let e_tp = analysis.expected_polluted_events().expect("solvable");
        let split = analysis.absorption_split().expect("solvable");

        let strategy = TargetedStrategy::new(k, params.nu()).expect("valid strategy");
        let report = simulation::estimate(
            &params,
            &InitialCondition::Delta,
            &strategy,
            replications,
            0xDEAD_BEEF,
            threads,
        );

        // Allow 3 half-widths of slack (the CI is 1.96 sigma).
        let ok_s = (report.safe_events.mean - e_ts).abs()
            <= 3.0 * report.safe_events.ci_half_width.max(1e-6);
        let ok_p = (report.polluted_events.mean - e_tp).abs()
            <= 3.0 * report.polluted_events.ci_half_width.max(1e-6);
        let ok_a = (report.absorption.2 - split.polluted_merge).abs() < 0.01;
        all_ok &= ok_s && ok_p && ok_a;

        println!(
            "{:>5} {:>5} {:>2} | {:>10} {:>22} | {:>10} {:>22} | {:>7} {:>7.4}{}",
            format!("{:.0}%", mu * 100.0),
            d,
            k,
            fmt_value(e_ts),
            format!("{}", report.safe_events),
            fmt_value(e_tp),
            format!("{}", report.polluted_events),
            fmt_value(split.polluted_merge),
            report.absorption.2,
            if ok_s && ok_p && ok_a { "" } else { "  <-- MISMATCH" }
        );
    }

    println!(
        "\nverdict: {}",
        if all_ok {
            "analytical model and event-level simulation AGREE"
        } else {
            "MISMATCH DETECTED — investigate"
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
