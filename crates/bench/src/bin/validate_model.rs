//! Validates the **Figure 2** transition matrix: the analytical metrics
//! (Relations 5–9) are compared against the independently-coded
//! event-level Monte-Carlo simulator across a `(μ, d, k)` grid — the
//! `validate_model` scenario of `pollux-sweep`.
//!
//! Agreement within the Monte-Carlo confidence intervals is the
//! reproduction's main internal validity check. The process exits
//! non-zero on any mismatch.

use pollux_bench::{banner, parse_cli_or_exit, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "validate_model",
        "Figure 2 validation: analytical model vs event-level Monte-Carlo",
    );
    banner("Model validation — analytical (Figure 2 matrix) vs event-level Monte-Carlo");
    let reports = run_and_emit(&args, &["validate_model"]);
    let mut all_ok = true;
    for report in &reports {
        println!("{}", report.render_text());
        all_ok &= report.all_ok();
    }
    println!(
        "\nverdict: {}",
        if all_ok {
            "analytical model and event-level simulation AGREE"
        } else {
            "MISMATCH DETECTED — investigate"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
