//! Reproduces **Figure 4** of the paper: the absorption probabilities
//! `p(AmS)` (safe merge), `p(AℓS)` (safe split) and `p(AmP)` (polluted
//! merge) as a function of `μ` and `d`, for `protocol_1`, `C = 7`,
//! `Δ = 7`, under both `α = δ` and `α = β` — the `fig4` scenario of
//! `pollux-sweep`.
//!
//! Paper anchors: at `μ = 0`, `p(AmS) = 0.57` and `p(AℓS) = 0.43`
//! (from `s₀ = 3`: `1 − 3/7` and `3/7`); for `α = δ` the polluted-merge
//! probability stays below 8 % even at `μ = 30 %`, `d = 90 %` — the
//! fault-containment headline.

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "fig4",
        "Figure 4: absorption probabilities over (d, mu, alpha)",
    );
    let reports = run_and_emit(&args, &["fig4"]);
    for report in &reports {
        report_banner(
            report,
            "fig4",
            "Figure 4 — absorption probabilities, protocol_1, both initials",
        );
        println!("{}", report.render_text());
    }
    if reports.iter().any(|r| r.scenario == "fig4") {
        println!("Shape checks (paper lessons):");
        println!("  1. mu = 0: p(AmS) = 4/7 ~ 0.57, p(AlS) = 3/7 ~ 0.43, p(AmP) = 0.");
        println!("  2. p(safe-split) grows with d at fixed mu (fewer malicious leaves).");
        println!("  3. delta-start: p(AmP) < 8% even at mu = 30%, d = 90%.");
        println!("  4. p(polluted-split) = 0 everywhere (Rule 2).");
    }
}
