//! Reproduces **Figure 4** of the paper: the absorption probabilities
//! `p(AmS)` (safe merge), `p(AℓS)` (safe split) and `p(AmP)` (polluted
//! merge) as a function of `μ` and `d`, for `protocol_1`, `C = 7`,
//! `Δ = 7`, under both `α = δ` and `α = β`.
//!
//! Paper anchors: at `μ = 0`, `p(AmS) = 0.57` and `p(AℓS) = 0.43`
//! (from `s₀ = 3`: `1 − 3/7` and `3/7`); for `α = δ` the polluted-merge
//! probability stays below 8 % even at `μ = 30 %`, `d = 90 %` — the
//! fault-containment headline.

use pollux::experiments::{self, render_table};
use pollux::InitialCondition;
use pollux_bench::{banner, fmt_value};

fn main() {
    for (initial, name) in [
        (InitialCondition::Delta, "alpha = delta"),
        (InitialCondition::Beta, "alpha = beta"),
    ] {
        banner(&format!(
            "Figure 4 — absorption probabilities, protocol_1, {name}"
        ));
        let cells = experiments::figure4_panel(&initial).expect("paper parameters are valid");
        let mut rows = Vec::new();
        for cell in &cells {
            rows.push(vec![
                format!("{:.0}%", cell.d * 100.0),
                format!("{:.0}%", cell.mu * 100.0),
                fmt_value(cell.split.safe_merge),
                fmt_value(cell.split.safe_split),
                fmt_value(cell.split.polluted_merge),
                fmt_value(cell.split.total()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["d", "mu", "p(safe-merge)", "p(safe-split)", "p(polluted-merge)", "total"],
                &rows
            )
        );
    }
    println!("Shape checks (paper lessons):");
    println!("  1. mu = 0: p(AmS) = 4/7 ~ 0.57, p(AlS) = 3/7 ~ 0.43, p(AmP) = 0.");
    println!("  2. p(safe-split) grows with d at fixed mu (fewer malicious leaves).");
    println!("  3. delta-start: p(AmP) < 8% even at mu = 30%, d = 90%.");
    println!("  4. p(polluted-split) = 0 everywhere (Rule 2).");
}
