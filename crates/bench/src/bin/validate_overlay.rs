//! Validates **Theorem 2** (Section VIII): the closed-form overlay-level
//! proportions `E(N_S(m))/n`, `E(N_P(m))/n` against the `n`-cluster
//! competing Monte-Carlo simulation.

use pollux::overlay_sim::{run_overlay, OverlaySimConfig};
use pollux::{InitialCondition, ModelParams, OverlayModel};
use pollux_adversary::TargetedStrategy;
use pollux_bench::banner;

fn main() {
    banner("Overlay validation — Theorem 2 vs n-cluster Monte-Carlo");
    let mu = 0.25;
    let d = 0.9;
    let n = 500usize;
    let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
    let strategy = TargetedStrategy::new(1, params.nu()).expect("valid strategy");
    let sample_points: Vec<u64> = vec![0, 5_000, 10_000, 20_000, 40_000, 80_000];

    let model = OverlayModel::new(&params, InitialCondition::Delta, n as u64)
        .expect("paper parameters are valid");
    let expect = model
        .proportion_series(&sample_points)
        .expect("series evaluates");

    let runs = 20;
    let config = OverlaySimConfig {
        n_clusters: n,
        sample_points: sample_points.clone(),
        regenerate: false,
    };
    let mut mean_safe = vec![0.0; sample_points.len()];
    let mut mean_polluted = vec![0.0; sample_points.len()];
    for seed in 0..runs {
        let tr = run_overlay(&params, &InitialCondition::Delta, &strategy, &config, seed);
        for (i, &(_, s, p)) in tr.points.iter().enumerate() {
            mean_safe[i] += s / runs as f64;
            mean_polluted[i] += p / runs as f64;
        }
    }

    println!(
        "{:>8} | {:>10} {:>10} | {:>12} {:>12}",
        "m", "T2 safe", "sim safe", "T2 polluted", "sim polluted"
    );
    let mut all_ok = true;
    for (i, e) in expect.iter().enumerate() {
        let ok = (mean_safe[i] - e.safe).abs() < 0.02 && (mean_polluted[i] - e.polluted).abs() < 0.01;
        all_ok &= ok;
        println!(
            "{:>8} | {:>10.4} {:>10.4} | {:>12.5} {:>12.5}{}",
            e.m,
            e.safe,
            mean_safe[i],
            e.polluted,
            mean_polluted[i],
            if ok { "" } else { "  <-- MISMATCH" }
        );
    }
    println!(
        "\nverdict: {}",
        if all_ok {
            "Theorem 2 and the n-cluster simulation AGREE"
        } else {
            "MISMATCH DETECTED — investigate"
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
