//! Validates **Theorem 2** (Section VIII): the closed-form overlay-level
//! proportions `E(N_S(m))/n`, `E(N_P(m))/n` against the `n`-cluster
//! competing Monte-Carlo simulation — the `validate_overlay` scenario of
//! `pollux-sweep`. The process exits non-zero on any mismatch.

use pollux_bench::{banner, parse_cli_or_exit, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "validate_overlay",
        "Theorem 2 validation: closed-form proportions vs n-cluster Monte-Carlo",
    );
    banner("Overlay validation — Theorem 2 vs n-cluster Monte-Carlo");
    let reports = run_and_emit(&args, &["validate_overlay"]);
    let mut all_ok = true;
    for report in &reports {
        println!("{}", report.render_text());
        all_ok &= report.all_ok();
    }
    println!(
        "\nverdict: {}",
        if all_ok {
            "Theorem 2 and the n-cluster simulation AGREE"
        } else {
            "MISMATCH DETECTED — investigate"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
