//! Reproduces **Table I** of the paper: `E(T_S^{(1)})` and `E(T_P^{(1)})`
//! as a function of `μ` and `d`, for `k = 1`, `C = 7`, `Δ = 7`, `α = δ`
//! — the `table1` scenario of `pollux-sweep`.
//!
//! Paper values for comparison (Anceaume et al., DSN 2011, Table I):
//!
//! ```text
//!              μ=0%              μ=10%                μ=20%                 μ=30%
//! d       .95  .99  .999    .95   .99    .999    .95   .99   .999      .95    .99    .999
//! E(T_S)  12   12   12      12.09 12.08  12.08   11.88 11.84 11.83     11.54  11.48  11.47
//! E(T_P)  0    0    0       0.15  2.6    1518    1.14  699.7 5.1e8     5.96   12597  9.3e9
//! ```

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "table1",
        "Table I: sojourn expectations in the high-survival regime",
    );
    let reports = run_and_emit(&args, &["table1"]);
    for report in &reports {
        report_banner(
            report,
            "table1",
            "Table I — E(T_S^(1)) and E(T_P^(1)) vs (mu, d); k=1, C=7, Delta=7, alpha=delta",
        );
        println!("{}", report.render_text());
    }
    if reports.iter().any(|r| r.scenario == "table1") {
        println!("Paper reference: E(T_S) stays ~11.5-12.1 across the grid;");
        println!("E(T_P) grows from 0 to ~9.3e9 at mu=30%, d=0.999.");
    }
}
