//! Ablation of the adversary's levers: Rule 1 (voluntary leaves), Rule 2
//! (join suppression) and the maintenance bias are toggled independently
//! (`ablation_rules` scenario), and the Rule-1 threshold `ν` is swept
//! (`ablation_nu` scenario — the paper never fixes a numeric `ν`; the
//! sweep shows how little it matters for `k = 1` and how much for
//! `k = C`).

use pollux_bench::{banner, fail_run, parse_cli_or_exit, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "ablation_rules",
        "adversary-lever ablation and Rule-1 threshold sweep",
    );
    let reports = run_and_emit(&args, &["ablation_rules", "ablation_nu"]);
    for report in &reports {
        match report.scenario.as_str() {
            "ablation_rules" => {
                banner("Adversary-lever ablation — mu = 30%, d = 90%, k = 1, alpha = delta")
            }
            "ablation_nu" => banner("Rule-1 threshold sweep — nu only matters for k > 1"),
            other => banner(other),
        }
        println!("{}", report.render_text());
    }

    // Confirm nu is inert for k = 1: every k = 1 row of the nu sweep must
    // report the same E(T_P).
    if let Some(nu_sweep) = reports.iter().find(|r| r.scenario == "ablation_nu") {
        let Some(k_col) = nu_sweep.column("k") else {
            fail_run("ablation_rules", "ablation_nu report lost its 'k' column");
        };
        let tp: Vec<f64> = nu_sweep
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r[k_col].as_f64() == Some(1.0))
            .filter_map(|(i, _)| nu_sweep.f64(i, "E_T_P"))
            .collect();
        let inert = tp.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12);
        println!(
            "k = 1 sanity: E(T_P) identical across nu? {}",
            if inert { "yes" } else { "NO" }
        );
    }
}
