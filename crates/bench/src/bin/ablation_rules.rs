//! Ablation of the adversary's levers: Rule 1 (voluntary leaves), Rule 2
//! (join suppression) and the maintenance bias are toggled independently,
//! and the Rule-1 threshold `ν` is swept (the paper never fixes a numeric
//! `ν`; this shows how little it matters for `k = 1` and how much for
//! `k = C`).

use pollux::experiments::render_table;
use pollux::{AdversaryToggles, ClusterAnalysis, InitialCondition, ModelParams};
use pollux_bench::{banner, fmt_value};

fn analyse(params: &ModelParams) -> (f64, f64, f64) {
    let a = ClusterAnalysis::new(params, InitialCondition::Delta)
        .expect("paper parameters are valid");
    (
        a.expected_safe_events().expect("solvable"),
        a.expected_polluted_events().expect("solvable"),
        a.absorption_split().expect("solvable").polluted_merge,
    )
}

fn main() {
    let mu = 0.3;
    let d = 0.9;

    banner(&format!(
        "Adversary-lever ablation — mu = {:.0}%, d = {:.0}%, k = 1, alpha = delta",
        mu * 100.0,
        d * 100.0
    ));
    let combos: [(&str, AdversaryToggles); 5] = [
        ("full adversary", AdversaryToggles::all()),
        (
            "no Rule 2",
            AdversaryToggles {
                rule2: false,
                ..AdversaryToggles::all()
            },
        ),
        (
            "no bias",
            AdversaryToggles {
                bias: false,
                ..AdversaryToggles::all()
            },
        ),
        (
            "no Rule 1",
            AdversaryToggles {
                rule1: false,
                ..AdversaryToggles::all()
            },
        ),
        ("passive (none)", AdversaryToggles::none()),
    ];
    let mut rows = Vec::new();
    for (name, toggles) in combos {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_toggles(toggles);
        let (ts, tp, pmp) = analyse(&params);
        rows.push(vec![
            name.to_string(),
            fmt_value(ts),
            fmt_value(tp),
            fmt_value(pmp),
        ]);
    }
    println!(
        "{}",
        render_table(&["adversary", "E(T_S)", "E(T_P)", "p(AmP)"], &rows)
    );

    banner("Rule-1 threshold sweep — k = 7 (nu only matters for k > 1)");
    let mut rows = Vec::new();
    for &nu in &[0.01, 0.05, 0.1, 0.2, 0.4] {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(7)
            .expect("k = 7 <= C")
            .with_nu(nu);
        let (ts, tp, pmp) = analyse(&params);
        rows.push(vec![
            format!("{nu}"),
            fmt_value(ts),
            fmt_value(tp),
            fmt_value(pmp),
        ]);
    }
    println!(
        "{}",
        render_table(&["nu", "E(T_S)", "E(T_P)", "p(AmP)"], &rows)
    );
    // And confirm nu is inert for k = 1.
    let a = {
        let p = ModelParams::paper_defaults().with_mu(mu).with_d(d).with_nu(0.01);
        analyse(&p)
    };
    let b = {
        let p = ModelParams::paper_defaults().with_mu(mu).with_d(d).with_nu(0.4);
        analyse(&p)
    };
    println!(
        "k = 1 sanity: E(T_P) identical across nu? {}",
        if (a.1 - b.1).abs() < 1e-12 { "yes" } else { "NO" }
    );
}
