//! Cross-validates the cluster-level **Markov chain against the
//! whole-overlay discrete-event simulator** (`pollux::des_overlay`) at
//! scales far beyond state-space enumeration: the `des_validate`
//! (10⁴–1.6·10⁵ nodes) and `des_validate_wide` (structure and adversary
//! ablations) scenarios of `pollux-sweep`.
//!
//! Each row compares measured per-cluster sojourns (`T_S`, `T_P`) and the
//! polluted-merge absorption frequency against Relations 5–6 and 9, with
//! Welford confidence intervals on the sojourns and a Wilson score
//! interval on the absorption frequency. The process exits non-zero on
//! any mismatch.
//!
//! The million-node demonstration lives in the `des_scale` scenario:
//!
//! ```text
//! des_validate des_scale            # 2^17 clusters ≈ 1.3M nodes
//! ```

use pollux_bench::{banner, parse_cli_or_exit, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "des_validate",
        "large-N DES validation: whole-overlay event-driven simulation vs the Markov model",
    );
    banner("DES validation — whole-overlay discrete-event simulation vs Markov predictions");
    let reports = run_and_emit(&args, &["des_validate", "des_validate_wide"]);
    let mut all_ok = true;
    for report in &reports {
        println!("{}", report.render_text());
        all_ok &= report.all_ok();
    }
    println!(
        "\nverdict: {}",
        if all_ok {
            "event-driven overlay simulation and Markov model AGREE"
        } else {
            "MISMATCH DETECTED — investigate"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
