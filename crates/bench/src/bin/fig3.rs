//! Reproduces **Figure 3** of the paper: the expected number of events
//! spent in safe (`E(T_S^{(k)})`) and polluted (`E(T_P^{(k)})`) transient
//! states before absorption, as a function of `μ` and `d`, for the two
//! extreme protocols `protocol_1` and `protocol_7`, under both initial
//! distributions `δ` (left panels) and `β` (right panels).
//!
//! The paper reports the values as bar charts; this harness prints the bar
//! heights. Shape anchors from the paper: with `α = δ` the safe bars stay
//! near 12 and dominate the polluted ones for every `(μ, d)`; with `α = β`
//! the polluted bars grow quickly with `μ`; `protocol_1` dominates
//! `protocol_7` everywhere (more time safe, less time polluted).

use pollux::experiments::{self, render_table};
use pollux::InitialCondition;
use pollux_bench::{banner, fmt_value};

fn main() {
    for (initial, name) in [
        (InitialCondition::Delta, "alpha = delta (initially clean)"),
        (InitialCondition::Beta, "alpha = beta (binomially infiltrated)"),
    ] {
        for k in [1usize, 7] {
            banner(&format!(
                "Figure 3 — protocol_{k}, {name}: E(T_S), E(T_P) by (d, mu)"
            ));
            let cells =
                experiments::figure3_panel(k, &initial).expect("paper parameters are valid");
            let mut rows = Vec::new();
            for cell in &cells {
                rows.push(vec![
                    format!("{:.0}%", cell.d * 100.0),
                    format!("{:.0}%", cell.mu * 100.0),
                    fmt_value(cell.expected_safe),
                    fmt_value(cell.expected_polluted),
                ]);
            }
            println!(
                "{}",
                render_table(&["d", "mu", "E(T_S)", "E(T_P)"], &rows)
            );
        }
    }
    println!("Shape checks (paper lessons):");
    println!("  1. delta-start: safe time >> polluted time for all (mu, d).");
    println!("  2. protocol_1 >= protocol_7 in E(T_S), <= in E(T_P), cell by cell.");
    println!("  3. E(T_S) grows with d; E(T_P) grows sharply with mu and d.");
}
