//! Reproduces **Figure 3** of the paper: the expected number of events
//! spent in safe (`E(T_S^{(k)})`) and polluted (`E(T_P^{(k)})`) transient
//! states before absorption, as a function of `μ` and `d`, for the two
//! extreme protocols `protocol_1` and `protocol_7`, under both initial
//! distributions `δ` and `β` — the `fig3` scenario of `pollux-sweep`.
//!
//! The paper reports the values as bar charts; this harness prints the
//! bar heights. Shape anchors from the paper: with `α = δ` the safe bars
//! stay near 12 and dominate the polluted ones for every `(μ, d)`; with
//! `α = β` the polluted bars grow quickly with `μ`; `protocol_1`
//! dominates `protocol_7` everywhere (more time safe, less time
//! polluted).

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "fig3",
        "Figure 3: sojourn expectations over (d, mu, k, alpha)",
    );
    let reports = run_and_emit(&args, &["fig3"]);
    for report in &reports {
        report_banner(
            report,
            "fig3",
            "Figure 3 — E(T_S), E(T_P) by (d, mu), protocols 1 and 7, both initials",
        );
        println!("{}", report.render_text());
    }
    if reports.iter().any(|r| r.scenario == "fig3") {
        println!("Shape checks (paper lessons):");
        println!("  1. delta-start: safe time >> polluted time for all (mu, d).");
        println!("  2. protocol_1 >= protocol_7 in E(T_S), <= in E(T_P), cell by cell.");
        println!("  3. E(T_S) grows with d; E(T_P) grows sharply with mu and d.");
    }
}
