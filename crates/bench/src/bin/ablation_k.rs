//! Ablation behind the paper's headline lesson: sweeping the
//! randomization amount `k` of the leave maintenance from 1 to `C` shows
//! that *less* randomization resists targeted attacks better
//! (`protocol_1` maximizes safe time and minimizes polluted time) — the
//! `ablation_k` scenario of `pollux-sweep`.

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit("ablation_k", "k-sweep over (mu, d, alpha)");
    let reports = run_and_emit(&args, &["ablation_k"]);
    for report in &reports {
        report_banner(
            report,
            "ablation_k",
            "k-sweep — E(T_S), E(T_P) by (alpha, k, d, mu)",
        );
        println!("{}", report.render_text());
    }
    if reports.iter().any(|r| r.scenario == "ablation_k") {
        println!("Expected shape: E(T_S) decreases and E(T_P) increases with k —");
        println!("shuffling a single peer at a time (protocol_1) is the best defence.");
    }
}
