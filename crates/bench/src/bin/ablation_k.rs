//! Ablation behind the paper's headline lesson: sweeping the
//! randomization amount `k` of the leave maintenance from 1 to `C` shows
//! that *less* randomization resists targeted attacks better
//! (`protocol_1` maximizes safe time and minimizes polluted time).

use pollux::experiments::{self, render_table};
use pollux::InitialCondition;
use pollux_bench::{banner, fmt_value};

fn main() {
    for (initial, name) in [
        (InitialCondition::Delta, "alpha = delta"),
        (InitialCondition::Beta, "alpha = beta"),
    ] {
        for &(mu, d) in &[(0.2, 0.8), (0.3, 0.9)] {
            banner(&format!(
                "k-sweep — mu = {:.0}%, d = {:.0}%, {name}",
                mu * 100.0,
                d * 100.0
            ));
            let sweep =
                experiments::k_sweep(mu, d, &initial).expect("paper parameters are valid");
            let rows: Vec<Vec<String>> = sweep
                .iter()
                .map(|&(k, ts, tp)| {
                    vec![k.to_string(), fmt_value(ts), fmt_value(tp)]
                })
                .collect();
            println!("{}", render_table(&["k", "E(T_S)", "E(T_P)"], &rows));
        }
    }
    println!("Expected shape: E(T_S) decreases and E(T_P) increases with k —");
    println!("shuffling a single peer at a time (protocol_1) is the best defence.");
}
