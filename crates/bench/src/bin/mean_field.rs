//! The mean-field (fluid-limit) evaluation path: the
//! `meanfield_validate`, `meanfield_equilibrium` and `defense_frontier`
//! scenarios of `pollux-sweep`.
//!
//! `meanfield_validate` cross-examines the N→∞ fluid equilibrium
//! against the exact renewal fractions, the settled adaptive-ODE
//! trajectory and a regeneration-mode DES run (renewal-adjusted Wilson
//! interval widened by the O(1/M) finite-size band).
//! `meanfield_equilibrium` maps the coupled (routing-bias) equilibria
//! and their Jacobian-eigenvalue stability across amplifications, and
//! `defense_frontier` tunes the minimal induced-churn rate by
//! mean-field-guided bisection, verified against the exact chain. The
//! process exits non-zero when any agreement or verification verdict
//! fails.
//!
//! ```text
//! mean_field                       # all three scenarios
//! mean_field meanfield_validate    # the cross-validation only
//! ```

use pollux_bench::{banner, fail_run, parse_cli_or_exit, run_and_emit};
use pollux_sweep::SweepReport;

/// `true` when every row's `column` entry is a `true` boolean; reports
/// without the column pass vacuously (positional selection can run any
/// scenario through this binary).
fn column_all_true(report: &SweepReport, column: &str) -> bool {
    match report.columns.iter().position(|c| c == column) {
        None => true,
        Some(i) => report
            .rows
            .iter()
            .all(|row| row[i].as_bool().unwrap_or(false)),
    }
}

fn main() {
    let args = parse_cli_or_exit(
        "mean_field",
        "fluid-limit evaluation path: cross-validation, equilibrium map, control tuning",
    );
    banner("Mean field — the N→∞ fluid limit vs every other evaluation path");
    let reports = run_and_emit(
        &args,
        &[
            "meanfield_validate",
            "meanfield_equilibrium",
            "defense_frontier",
        ],
    );
    let mut all_ok = true;
    for report in &reports {
        println!("{}", report.render_text());
        // `meanfield_validate` carries `ok`, `defense_frontier`
        // (control tuning) carries `verified_ok`; `meanfield_equilibrium`
        // has no verdict column (it is a map, not a check).
        all_ok &= report.all_ok() && column_all_true(report, "verified_ok");
    }
    if !all_ok {
        fail_run(
            "mean_field",
            "a mean-field prediction disagrees with the exact chain or the DES",
        );
    }
    println!("\nverdict: the fluid limit AGREES with the exact chain and the DES");
}
