//! Reproduces **Figure 5** of the paper: the expected proportion of safe
//! clusters `E(N_S(m))/n` and polluted clusters `E(N_P(m))/n` after
//! `m ≤ 10⁵` overlay events, for `n ∈ {500, 1500}` and `d ∈ {30 %, 90 %}`
//! (the captions' `L = 6.58` and `L = 46.05`), with `α = δ` and
//! `protocol_1` — the `fig5` scenario of `pollux-sweep`.
//!
//! The paper does not state `μ` for this figure; sweeping it shows that
//! `μ = 25 %` reproduces the "< 2.2 %" polluted-proportion ceiling the
//! paper reports almost exactly (peak 2.17 % at `n = 500, d = 90 %`), so
//! that is almost certainly the value the authors used. The scenario
//! sweeps `μ ∈ {10 %, 20 %, 25 %, 30 %}` (see the repository README for
//! the paper-vs-measured discussion). Anchors: the safe proportion
//! decays from 1 towards 0 almost independently of `d`; the polluted
//! proportion stays tiny.

use pollux_bench::{parse_cli_or_exit, report_banner, run_and_emit};

fn main() {
    let args = parse_cli_or_exit("fig5", "Figure 5: overlay proportions over (n, d, mu)");
    let reports = run_and_emit(&args, &["fig5"]);
    for report in reports.iter().cloned() {
        report_banner(&report, "fig5", "Figure 5 — E(N_S(m))/n and E(N_P(m))/n");
        // Proportion series are 51 sample points per (mu, d, n); print
        // every fifth row (m multiples of 10 000) to keep stdout
        // readable. The complete series lands in the TSV artefact via
        // --out-dir. Reports of other kinds (selected by positional
        // names) have no m column and print whole.
        if let Some(m_col) = report.column("m") {
            let mut thinned = report.clone();
            thinned.rows.retain(|row| {
                row[m_col]
                    .as_f64()
                    .is_some_and(|m| (m as u64).is_multiple_of(10_000))
            });
            println!("{}", thinned.render_text());
        } else {
            println!("{}", report.render_text());
        }

        if let Some(polluted) = report.column("polluted_proportion") {
            let peak = report
                .rows
                .iter()
                .filter_map(|r| r[polluted].as_f64())
                .fold(0.0f64, f64::max);
            println!("peak polluted proportion across the whole grid: {peak:.5}");
        }
    }
    if reports.iter().any(|r| r.scenario == "fig5") {
        println!("\nShape checks: curves nearly independent of d (real churn dominates");
        println!("induced churn); polluted proportion < 2.2% at mu = 25% — the");
        println!("inferred paper setting; larger n stretches the time axis.");
    }
}
