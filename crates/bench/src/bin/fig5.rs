//! Reproduces **Figure 5** of the paper: the expected proportion of safe
//! clusters `E(N_S(m))/n` (left panel) and polluted clusters
//! `E(N_P(m))/n` (right panel) after `m ≤ 10⁵` overlay events, for
//! `n ∈ {500, 1500}` and `d ∈ {30 %, 90 %}` (the captions' `L = 6.58` and
//! `L = 46.05`), with `α = δ` and `protocol_1`.
//!
//! The paper does not state `μ` for this figure; sweeping it shows that
//! `μ = 25 %` reproduces the "< 2.2 %" polluted-proportion ceiling the
//! paper reports almost exactly (peak 2.17 % at `n = 500, d = 90 %`), so
//! that is almost certainly the value the authors used. The harness
//! prints `μ ∈ {10 %, 20 %, 25 %, 30 %}` (see DESIGN.md and
//! EXPERIMENTS.md). Anchors: the safe proportion decays from 1 towards 0
//! almost independently of `d`; the polluted proportion stays tiny.

use pollux::experiments;
use pollux_bench::banner;

fn main() {
    let sample_points = experiments::figure5_sample_points();
    let print_points: Vec<u64> = (0..=10).map(|i| i * 10_000).collect();

    for &mu in &[0.10, 0.20, 0.25, 0.30] {
        banner(&format!(
            "Figure 5 — E(N_S(m))/n and E(N_P(m))/n, mu = {:.0}%",
            mu * 100.0
        ));
        println!(
            "{:>8}  {}",
            "m",
            ["n=500,d=30%", "n=500,d=90%", "n=1500,d=30%", "n=1500,d=90%"]
                .map(|h| format!("{h:>23}"))
                .join("")
        );
        let mut columns = Vec::new();
        for &(n, d) in &[(500u64, 0.3), (500, 0.9), (1500, 0.3), (1500, 0.9)] {
            let series = experiments::figure5_series(n, d, mu, &sample_points)
                .expect("paper parameters are valid");
            columns.push(series);
        }
        for &m in &print_points {
            let mut line = format!("{m:>8}");
            for col in &columns {
                let p = col
                    .iter()
                    .find(|p| p.m == m)
                    .expect("print points lie on the sample grid");
                line.push_str(&format!("  {:>9.4} /{:>9.5}", p.safe, p.polluted));
            }
            println!("{line}");
        }
        // Peak polluted proportion per column.
        print!("peak polluted:      ");
        for col in &columns {
            let peak = col
                .iter()
                .map(|p| p.polluted)
                .fold(0.0f64, f64::max);
            print!("{:>12.5}          ", peak);
        }
        println!();
    }
    println!("\nColumns print `safe / polluted` proportions.");
    println!("Shape checks: curves nearly independent of d (real churn dominates");
    println!("induced churn); polluted proportion < 2.2% at mu = 25% — the");
    println!("inferred paper setting; larger n stretches the time axis.");
}
