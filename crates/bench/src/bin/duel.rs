//! Adversary-vs-defense duels: the `duel_matrix` and `des_steady_state`
//! scenarios of `pollux-sweep`.
//!
//! `duel_matrix` evaluates every defense (`none`, `induced-churn`,
//! `incarnation-refresh`, `adaptive-cluster-size`) against a panel of
//! adversary strategies over a `(C, Δ)` grid — analytically (the
//! defense-folded chain through the sparse pipeline) **and** empirically
//! (regeneration-mode whole-overlay DES), with a renewal-adjusted Wilson
//! interval tying the two estimates together per row.
//! `des_steady_state` validates the measurement substrate
//! (regeneration-mode event fractions vs the renewal–reward closed
//! form). The process exits non-zero when any agreement verdict fails.
//! The `defense_frontier` tuning scenario moved to the `mean_field`
//! binary, which owns the fluid-limit evaluation path it now runs on.
//!
//! ```text
//! duel                         # both scenarios
//! duel duel_matrix             # the duel matrix only
//! ```

use pollux_bench::{banner, parse_cli_or_exit, run_and_emit};

fn main() {
    let args = parse_cli_or_exit(
        "duel",
        "adversary-vs-defense duels: countermeasures vs the targeted attack, analytic and DES",
    );
    banner("Duels — pluggable countermeasures vs the targeted adversary");
    let reports = run_and_emit(&args, &["des_steady_state", "duel_matrix"]);
    let mut all_ok = true;
    for report in &reports {
        println!("{}", report.render_text());
        all_ok &= report.all_ok();
    }
    println!(
        "\nverdict: {}",
        if all_ok {
            "analytic and measured duel outcomes AGREE"
        } else {
            "MISMATCH DETECTED — investigate"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
