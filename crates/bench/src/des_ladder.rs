//! The `des_at_scale` scaling ladder, shared between the `des_overlay`
//! bench (which serializes `BENCH_des.json`) and the repository's
//! `examples/des_at_scale`, so the recorded perf trajectory and the
//! example always measure the same workload the same way.
//!
//! The workload is the absorption ladder: `2^bits` clusters at `λ = 1`
//! with a non-binding 3 000-events-per-cluster budget (`E(T) ≈ 13`
//! events, so every cluster absorbs and unused budget costs nothing
//! without regeneration), under the paper's targeted adversary at
//! `μ = 0.25`, `d = 0.9`, seeded with [`LADDER_SEED`]. The per-rung
//! event counts are deterministic and part of the recorded trajectory —
//! any engine change that moves them is an RNG-stream break, not a perf
//! delta.

use std::time::Instant;

use pollux::des_overlay::{
    des_memory_audit, run_des_overlay, run_des_overlay_duel_with_stats, DesOverlayConfig,
    DesOverlayReport, DesShardStats, QueueBackend,
};
use pollux::{InitialCondition, ModelParams};
use pollux_adversary::Strategy;
use pollux_defense::NullDefense;
use pollux_obs::mem::MemoryAudit;

/// The ladder's historical seed; rung event counts are recorded
/// trajectory facts under it (209 399 events at 2¹⁴, 13 454 853 at 2²⁰).
pub const LADDER_SEED: u64 = 2011;

/// Default rungs: 2¹⁴ = 16k, 2¹⁷ = 131k and 2²⁰ ≈ 1M clusters —
/// ≈1.6·10⁵ to ≈10⁷ nodes at `C = Δ = 7`.
pub const LADDER_BITS: [u32; 3] = [14, 17, 20];

/// The ladder's model point: paper defaults at `μ = 0.25`, `d = 0.9`.
#[must_use]
pub fn ladder_params() -> ModelParams {
    ModelParams::paper_defaults().with_mu(0.25).with_d(0.9)
}

/// The ladder workload at one rung on the given queue backend.
#[must_use]
pub fn ladder_config(bits: u32, queue: QueueBackend) -> DesOverlayConfig {
    DesOverlayConfig::new(bits, 1.0, 3_000 << bits).with_queue_backend(queue)
}

/// Best-of-`samples` single-shard run. The ladder is deterministic, so
/// the fastest sample is the least-perturbed one; the report is
/// byte-identical across samples by construction.
pub fn time_single<S: Strategy + Sync>(
    params: &ModelParams,
    strategy: &S,
    config: &DesOverlayConfig,
    samples: usize,
) -> (DesOverlayReport, f64) {
    let mut best: Option<(DesOverlayReport, f64)> = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let r = run_des_overlay(
            params,
            &InitialCondition::Delta,
            strategy,
            config,
            LADDER_SEED,
        );
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((r, secs));
        }
    }
    best.expect("at least one sample")
}

/// Best-of-`samples` sharded run (fastest aggregate wall clock wins),
/// returning the per-shard stats of the winning sample.
pub fn time_sharded<S: Strategy + Sync>(
    params: &ModelParams,
    strategy: &S,
    config: &DesOverlayConfig,
    samples: usize,
) -> (DesOverlayReport, DesShardStats, f64) {
    let mut best: Option<(DesOverlayReport, DesShardStats, f64)> = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let (r, stats) = run_des_overlay_duel_with_stats(
            params,
            &InitialCondition::Delta,
            strategy,
            &NullDefense::new(),
            config,
            LADDER_SEED,
        );
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, _, b)| secs < *b) {
            best = Some((r, stats, secs));
        }
    }
    best.expect("at least one sample")
}

/// One rung's memory block: the exact analytic audit for this config's
/// resolved backend plus the kernel's peak RSS (monotonic over the
/// process, so it reflects the largest rung run so far).
#[must_use]
pub fn rung_memory(params: &ModelParams, config: &DesOverlayConfig) -> (MemoryAudit, Option<u64>) {
    (
        des_memory_audit(params, config),
        pollux_obs::mem::peak_rss_bytes(),
    )
}

/// Human-readable one-liner for a rung's memory block.
#[must_use]
pub fn format_memory_line(audit: &MemoryAudit, peak_rss_bytes: Option<u64>) -> String {
    format!(
        "memory: {:.2} B/node audited ({} nodes, {:.1} MiB total), peak RSS {}",
        audit.bytes_per_node(),
        audit.nodes(),
        audit.total_bytes() as f64 / (1024.0 * 1024.0),
        peak_rss_bytes.map_or("n/a".to_string(), |b| format!(
            "{:.1} MiB",
            b as f64 / (1024.0 * 1024.0)
        )),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_adversary::TargetedStrategy;

    /// The smallest rung reproduces its recorded event count on both
    /// backends, byte-identically — the trajectory's anchor fact.
    #[test]
    fn bits_ten_rung_is_deterministic_across_backends() {
        let params = ladder_params();
        let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
        let heap = ladder_config(10, QueueBackend::Heap);
        let cal = ladder_config(10, QueueBackend::Calendar);
        let (rh, _) = time_single(&params, &strategy, &heap, 1);
        let (rc, _) = time_single(&params, &strategy, &cal, 1);
        assert_eq!(rh, rc);
        let (rs, stats, _) = time_sharded(
            &params,
            &strategy,
            &cal.clone().with_shards(2).with_work_stealing(1),
            1,
        );
        assert_eq!(rh, rs);
        assert_eq!(stats.shards(), 2);
        let (audit, _) = rung_memory(&params, &heap);
        assert!(audit.bytes_per_node() < 25.0);
        assert!(format_memory_line(&audit, Some(1 << 20)).contains("B/node"));
    }
}
