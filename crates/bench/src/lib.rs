//! Shared helpers for the reproduction harness binaries.
//!
//! Each binary under `src/bin` regenerates one table or figure of the
//! DSN'11 paper (see DESIGN.md section 3 for the experiment index):
//!
//! | binary             | paper artefact                                   |
//! |--------------------|--------------------------------------------------|
//! | `state_space`      | Figure 1 (state partition, 288 states)           |
//! | `fig3`             | Figure 3 (E(T_S), E(T_P) bar panels)             |
//! | `table1`           | Table I                                          |
//! | `table2`           | Table II                                         |
//! | `fig4`             | Figure 4 (absorption probabilities)              |
//! | `fig5`             | Figure 5 (overlay-level proportions)             |
//! | `validate_model`   | Figure 2 (matrix vs event-level Monte-Carlo)     |
//! | `validate_overlay` | Theorem 2 vs the n-cluster simulation            |
//! | `ablation_k`       | k-sweep behind the "protocol₁ wins" lesson       |
//! | `ablation_rules`   | Rule-1/Rule-2/bias toggles and the ν threshold   |

/// Formats a probability/expectation for table output: fixed point for
/// ordinary magnitudes, scientific for the explosive Table-I corners.
pub fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0.0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Prints a section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0.0");
        assert_eq!(fmt_value(12.085), "12.085");
        assert!(fmt_value(9.3e9).contains('e'));
        assert!(fmt_value(2.4e-5).contains('e'));
        assert_eq!(fmt_pct(0.216), "21.6%");
    }
}
