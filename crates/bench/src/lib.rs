//! Shared helpers for the reproduction harness binaries.
//!
//! Each binary under `src/bin` regenerates one artefact of the DSN'11
//! paper by running the matching named `pollux-sweep` scenario (see the
//! experiment index in the repository `README.md`):
//!
//! | binary             | scenario(s)        | paper artefact                                   |
//! |--------------------|--------------------|--------------------------------------------------|
//! | `state_space`      | `state_space`      | Figure 1 (state partition, 288 states)           |
//! | `fig3`             | `fig3`             | Figure 3 (E(T_S), E(T_P) bar panels)             |
//! | `table1`           | `table1`           | Table I                                          |
//! | `table2`           | `table2`           | Table II                                         |
//! | `fig4`             | `fig4`             | Figure 4 (absorption probabilities)              |
//! | `fig5`             | `fig5`             | Figure 5 (overlay-level proportions)             |
//! | `validate_model`   | `validate_model`   | Figure 2 (matrix vs event-level Monte-Carlo)     |
//! | `validate_overlay` | `validate_overlay` | Theorem 2 vs the n-cluster simulation            |
//! | `des_validate`     | `des_validate`, `des_validate_wide` | Markov chain vs the whole-overlay DES at 10^4–10^5 nodes (`des_scale` reaches 10^6) |
//! | `ablation_k`       | `ablation_k`       | k-sweep behind the "protocol₁ wins" lesson       |
//! | `ablation_rules`   | `ablation_rules`, `ablation_nu` | Rule-1/Rule-2/bias toggles, ν sweep |
//! | `pollution_risk`   | `risk_decomposition` | beyond-paper pollution decomposition           |
//! | `duel`             | `des_steady_state`, `duel_matrix` | adversary-vs-defense duels (beyond-paper countermeasures) |
//! | `mean_field`       | `meanfield_validate`, `meanfield_equilibrium`, `defense_frontier` | fluid-limit cross-validation, equilibrium/stability map, mean-field-guided defense tuning |
//! | `reproduce_all`    | every paper artefact | one parallel run writing all TSVs              |
//!
//! Every binary accepts the common sweep flags (`--threads N`,
//! `--out-dir DIR`, `--seed S`, `--format tsv|json|both`, `--list`) plus
//! positional scenario names overriding its default set.

use std::process::exit;

use pollux_sweep::{registry, SweepArgs, SweepError, SweepReport, USAGE};

pub mod des_ladder;

/// Formats a probability/expectation for table output: fixed point for
/// ordinary magnitudes, scientific for the explosive Table-I corners.
pub fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0.0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Prints a section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Parses the common CLI for a harness binary, handling `--help`,
/// `--list` and parse errors (which all terminate the process).
pub fn parse_cli_or_exit(binary: &str, about: &str) -> SweepArgs {
    match SweepArgs::parse(std::env::args().skip(1)) {
        Ok(args) if args.list => {
            println!("available scenarios:");
            for s in registry::all() {
                println!("  {:<18} {}", s.name, s.description);
            }
            exit(0);
        }
        Ok(args) => args,
        Err(msg) if msg == "help" => {
            println!("{binary} — {about}\n\nusage: {binary} [options] [SCENARIO…]\n{USAGE}");
            exit(0);
        }
        Err(msg) => {
            eprintln!("{binary}: {msg}\n{USAGE}");
            exit(2);
        }
    }
}

/// Resolves the scenarios a binary should run: positional names when
/// given, otherwise its defaults (plus the beyond-paper set under
/// `--extended`).
///
/// # Errors
///
/// [`SweepError::UnknownScenario`] for an unrecognized name.
pub fn resolve_scenarios(
    args: &SweepArgs,
    defaults: &[&str],
) -> Result<Vec<pollux_sweep::Scenario>, SweepError> {
    if !args.scenarios.is_empty() {
        return args.scenarios.iter().map(|n| registry::find(n)).collect();
    }
    let mut scenarios: Vec<_> = defaults
        .iter()
        .map(|n| registry::find(n))
        .collect::<Result<Vec<_>, _>>()?;
    if args.extended {
        let extras: Vec<_> = registry::extended()
            .into_iter()
            .filter(|e| scenarios.iter().all(|s| s.name != e.name))
            .collect();
        scenarios.extend(extras);
    }
    Ok(scenarios)
}

/// Prints the binary's curated banner for its default scenario, and the
/// scenario's own name for anything selected via positional names or
/// `--extended`, so reports are never mislabeled.
pub fn report_banner(report: &SweepReport, default_name: &str, title: &str) {
    if report.scenario == default_name {
        banner(title);
    } else {
        banner(&format!("scenario '{}'", report.scenario));
    }
}

/// Terminates a binary with the run-failure exit code (1) after a
/// structured `binary: message` line on stderr — the harness replacement
/// for panicking when a report invariant does not hold. (Usage errors
/// exit 2, clean runs 0; see `parse_cli_or_exit`.)
pub fn fail_run(binary: &str, msg: &str) -> ! {
    eprintln!("{binary}: {msg}");
    exit(1);
}

/// Runs a binary's scenarios as one pooled sweep and emits artefacts to
/// `--out-dir` when set. Under `--metrics-dir` each scenario also gets a
/// `<name>.metrics.json` instrumentation sidecar (populated only by
/// builds with the `metrics` cargo feature; sidecars carry wall times,
/// which is why they live outside the determinism-diffed `--out-dir`).
///
/// The runner comes from [`SweepArgs::runner_from_env`], so the
/// `POLLUX_MEM_BUDGET_BYTES` budget and `POLLUX_FAULT` injection plan
/// apply; a malformed variable is a usage error (exit 2) like any bad
/// flag, never a silently ignored one. Run failures exit 1.
pub fn run_and_emit(args: &SweepArgs, defaults: &[&str]) -> Vec<SweepReport> {
    let runner = match args.runner_from_env() {
        Ok(runner) => runner,
        Err(msg) => {
            eprintln!("sweep configuration: {msg}\n{USAGE}");
            exit(2);
        }
    };
    let run = || -> Result<Vec<SweepReport>, SweepError> {
        let scenarios = resolve_scenarios(args, defaults)?;
        let (reports, obs) = runner.run_all_observed(&scenarios)?;
        if let Some(dir) = &args.out_dir {
            for report in &reports {
                for path in pollux_sweep::write_report(report, dir, args.format)? {
                    println!("wrote {}", path.display());
                }
            }
        }
        if let Some(dir) = &args.metrics_dir {
            if !pollux_obs::METRICS_ENABLED {
                eprintln!(
                    "note: --metrics-dir set but this build lacks the `metrics` \
                     cargo feature; sidecars will be empty"
                );
            }
            std::fs::create_dir_all(dir)?;
            for sidecar in &obs {
                let mut report = pollux_obs::ObsReport::new(&sidecar.scenario);
                report.set_u64("threads", runner.threads() as u64);
                report.set_u64("seed", args.seed.unwrap_or(pollux_sweep::DEFAULT_SEED));
                report.merge_registry(&sidecar.registry);
                let path = dir.join(format!("{}.metrics.json", sidecar.scenario));
                report.write_json(&path)?;
                println!("wrote {}", path.display());
            }
        }
        Ok(reports)
    };
    match run() {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0.0");
        assert_eq!(fmt_value(12.085), "12.085");
        assert!(fmt_value(9.3e9).contains('e'));
        assert!(fmt_value(2.4e-5).contains('e'));
        assert_eq!(fmt_pct(0.216), "21.6%");
    }

    #[test]
    fn default_scenarios_resolve() {
        let args = SweepArgs::default();
        let scenarios = resolve_scenarios(&args, &["fig3", "table1"]).unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].name, "fig3");
    }

    #[test]
    fn positional_names_override_defaults() {
        let args = SweepArgs {
            scenarios: vec!["table2".into()],
            ..SweepArgs::default()
        };
        let scenarios = resolve_scenarios(&args, &["fig3"]).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].name, "table2");
        assert!(resolve_scenarios(
            &SweepArgs {
                scenarios: vec!["nope".into()],
                ..SweepArgs::default()
            },
            &["fig3"]
        )
        .is_err());
    }

    #[test]
    fn extended_flag_appends_beyond_paper_set() {
        let args = SweepArgs {
            extended: true,
            ..SweepArgs::default()
        };
        let scenarios = resolve_scenarios(&args, &["fig3"]).unwrap();
        assert!(scenarios.len() > 1);
        assert!(scenarios.iter().any(|s| s.name == "mu_extreme"));
    }

    #[test]
    fn extended_never_duplicates_a_default() {
        // pollution_risk's default is itself in the extended set; with
        // --extended it must still run exactly once.
        let args = SweepArgs {
            extended: true,
            ..SweepArgs::default()
        };
        let scenarios = resolve_scenarios(&args, &["risk_decomposition"]).unwrap();
        let hits = scenarios
            .iter()
            .filter(|s| s.name == "risk_decomposition")
            .count();
        assert_eq!(hits, 1);
    }
}
