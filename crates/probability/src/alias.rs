use rand::RngExt;

use crate::ProbError;

/// Walker's alias method: O(1) sampling from a fixed finite distribution
/// after O(n) preprocessing.
///
/// The Monte-Carlo simulators repeatedly sample the successor state of a
/// cluster from per-state categorical distributions; alias tables keep those
/// draws constant-time regardless of support size.
///
/// # Example
///
/// ```
/// use pollux_prob::AliasTable;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let table = AliasTable::new(&[0.2, 0.3, 0.5]).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let idx = table.sample(&mut rng);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of each column.
    prob: Vec<f64>,
    /// Alias index taken when the column rejects.
    alias: Vec<usize>,
    /// Normalized input weights (kept for [`AliasTable::weight`]).
    weights: Vec<f64>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidWeights`] when the slice is empty,
    /// contains a negative or non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ProbError> {
        if weights.is_empty() {
            return Err(ProbError::InvalidWeights("empty weight vector".into()));
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(ProbError::InvalidWeights(format!(
                "weight {w} is negative or not finite"
            )));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ProbError::InvalidWeights("total weight is zero".into()));
        }
        let n = weights.len();
        let normalized: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Scale to mean 1 and split into under/over-full columns.
        let scaled: Vec<f64> = normalized.iter().map(|p| p * n as f64).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<(usize, f64)> = Vec::new();
        let mut large: Vec<(usize, f64)> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push((i, s));
            } else {
                large.push((i, s));
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let (si, sv) = small.pop().expect("checked non-empty");
            let (li, lv) = large.pop().expect("checked non-empty");
            prob[si] = sv;
            alias[si] = li;
            let rest = lv - (1.0 - sv);
            if rest < 1.0 {
                small.push((li, rest));
            } else {
                large.push((li, rest));
            }
        }
        // Remaining columns are exactly full up to rounding.
        for (i, _) in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(AliasTable {
            prob,
            alias,
            weights: normalized,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no categories (never constructible; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Normalized probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Draws a category index in O(1).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let col = rng.random_range(0..self.len());
        if rng.random_bool(self.prob[col].clamp(0.0, 1.0)) {
            col
        } else {
            self.alias[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn normalizes_weights() {
        let t = AliasTable::new(&[2.0, 6.0]).unwrap();
        assert!((t.weight(0) - 0.25).abs() < 1e-15);
        assert!((t.weight(1) - 0.75).abs() < 1e-15);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.15, 0.25];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 200_000usize;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            // 5-sigma bound on a Bernoulli proportion.
            let sigma = (w * (1.0 - w) / n as f64).sqrt();
            assert!(
                (freq - w).abs() < 5.0 * sigma + 1e-4,
                "category {i}: freq {freq} vs weight {w}"
            );
        }
    }

    #[test]
    fn handles_extreme_ratios() {
        let t = AliasTable::new(&[1e-12, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| t.sample(&mut rng) == 0).count();
        assert!(hits < 5, "tiny weight sampled {hits} times");
    }
}
