//! Exact and logarithmic combinatorics.
//!
//! The DSN'11 model works with clusters of a few dozen peers, so binomial
//! coefficients stay tiny; we nevertheless provide both an exact `u128`
//! path (with overflow detection) and a log-space path so that larger
//! parameterizations (e.g. ablations with big `Smax`) remain usable.

/// Exact binomial coefficient `C(n, k)` in `u128`, or `None` on overflow.
///
/// Uses the multiplicative formula with interleaved division, which stays
/// exact because every prefix product `C(n, j)` is an integer.
///
/// ```
/// use pollux_prob::comb::binomial_exact;
/// assert_eq!(binomial_exact(7, 3), Some(35));
/// assert_eq!(binomial_exact(3, 7), Some(0));
/// assert_eq!(binomial_exact(0, 0), Some(1));
/// ```
pub fn binomial_exact(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for j in 0..k {
        acc = acc.checked_mul((n - j) as u128)?;
        acc /= (j + 1) as u128;
    }
    Some(acc)
}

/// Binomial coefficient as `f64`, computed in log space for large inputs.
///
/// Exact for every value representable in `u128` (≲ `C(130, 65)`), and
/// accurate to ~1e-12 relative error beyond that.
pub fn binomial(n: u64, k: u64) -> f64 {
    match binomial_exact(n, k) {
        Some(v) => v as f64,
        None => ln_binomial(n, k).exp(),
    }
}

/// Natural log of `C(n, k)`; `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` via a cached table for small `n` and Stirling's
/// series beyond it.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 257;
    // Lazily built monotone table of ln(n!) for n < 257; this covers every
    // cluster size the model uses, exactly (accumulated ln).
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0; TABLE_LEN];
        let mut acc = 0.0;
        for (i, slot) in t.iter_mut().enumerate().skip(1) {
            acc += (i as f64).ln();
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        return table[n as usize];
    }
    stirling_ln_factorial(n as f64)
}

/// Stirling's series for `ln(n!)` with three correction terms.
fn stirling_ln_factorial(n: f64) -> f64 {
    let ln2pi = (2.0 * std::f64::consts::PI).ln();
    n * n.ln() - n + 0.5 * (ln2pi + n.ln()) + 1.0 / (12.0 * n) - 1.0 / (360.0 * n.powi(3))
        + 1.0 / (1260.0 * n.powi(5))
}

/// Falling factorial `n (n−1) ⋯ (n−k+1)` as `f64`.
///
/// ```
/// use pollux_prob::comb::falling_factorial;
/// assert_eq!(falling_factorial(5, 2), 20.0);
/// assert_eq!(falling_factorial(5, 0), 1.0);
/// assert_eq!(falling_factorial(2, 5), 0.0);
/// ```
pub fn falling_factorial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0;
    for j in 0..k {
        acc *= (n - j) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pascal_triangle_identity() {
        for n in 1..60u64 {
            for k in 1..n {
                let lhs = binomial_exact(n, k).unwrap();
                let rhs = binomial_exact(n - 1, k - 1).unwrap() + binomial_exact(n - 1, k).unwrap();
                assert_eq!(lhs, rhs, "C({n},{k})");
            }
        }
    }

    #[test]
    fn symmetry() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(binomial_exact(n, k), binomial_exact(n, n - k));
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(binomial_exact(52, 5), Some(2_598_960));
        assert_eq!(
            binomial_exact(100, 50).unwrap(),
            100891344545564193334812497256
        );
        assert_eq!(binomial_exact(7, 0), Some(1));
    }

    #[test]
    fn overflow_detected_then_log_path_takes_over() {
        // C(200,100) overflows u128.
        assert_eq!(binomial_exact(200, 100), None);
        let v = binomial(200, 100);
        // Known value ≈ 9.0548514656103281165404177077e58.
        let expect = 9.054851465610328e58;
        assert!((v / expect - 1.0).abs() < 1e-9, "got {v:e}");
    }

    #[test]
    fn ln_binomial_matches_exact_for_small_inputs() {
        for n in 0..50u64 {
            for k in 0..=n {
                let exact = binomial_exact(n, k).unwrap() as f64;
                let viajln = ln_binomial(n, k).exp();
                assert!(
                    (viajln / exact - 1.0).abs() < 1e-10,
                    "C({n},{k}): {viajln} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn ln_binomial_out_of_support() {
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_factorial_table_and_stirling_agree_at_boundary() {
        // Compare the exact accumulated value at n=256 with Stirling at 257.
        let a = ln_factorial(256) + (257f64).ln();
        let b = ln_factorial(257);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn falling_factorial_relates_to_binomial() {
        for n in 0..20u64 {
            for k in 0..=n {
                let lhs = falling_factorial(n, k);
                let rhs = binomial_exact(n, k).unwrap() as f64 * ln_factorial(k).exp();
                assert!((lhs - rhs).abs() < 1e-6 * lhs.max(1.0), "n={n} k={k}");
            }
        }
    }
}
