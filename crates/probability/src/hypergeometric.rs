use rand::RngExt;

use crate::comb::{binomial, ln_binomial};
use crate::ProbError;

/// The hypergeometric distribution, in the paper's notation
/// `q(k, ℓ, u, v)`: the probability of getting `u` red balls when `k` balls
/// are drawn *without replacement* from an urn containing `ℓ` balls of which
/// `v` are red.
///
/// The struct fixes the urn (`population = ℓ`, `successes = v`) and the
/// sample size (`draws = k`); `pmf(u)` evaluates the mass at `u`.
///
/// # Example
///
/// ```
/// use pollux_prob::Hypergeometric;
///
/// let h = Hypergeometric::new(10, 4, 3).unwrap();
/// // Full support sums to one.
/// let total: f64 = (0..=3).map(|u| h.pmf(u)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    population: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Creates the distribution with `population` balls, of which
    /// `successes` are red, drawing `draws` balls.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameters`] when `successes > population`
    /// or `draws > population`.
    pub fn new(population: u64, successes: u64, draws: u64) -> Result<Self, ProbError> {
        if successes > population {
            return Err(ProbError::InvalidParameters(format!(
                "successes {successes} exceeds population {population}"
            )));
        }
        if draws > population {
            return Err(ProbError::InvalidParameters(format!(
                "draws {draws} exceeds population {population}"
            )));
        }
        Ok(Hypergeometric {
            population,
            successes,
            draws,
        })
    }

    /// Urn size `ℓ`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of red balls `v`.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Sample size `k`.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Inclusive support bounds `[max(0, k+v−ℓ), min(k, v)]`.
    pub fn support(&self) -> (u64, u64) {
        let lo = (self.draws + self.successes).saturating_sub(self.population);
        let hi = self.draws.min(self.successes);
        (lo, hi)
    }

    /// Probability of drawing exactly `u` red balls.
    ///
    /// Returns 0 outside the support. Uses exact arithmetic for small urns
    /// and log-space otherwise.
    pub fn pmf(&self, u: u64) -> f64 {
        let (lo, hi) = self.support();
        if u < lo || u > hi {
            return 0.0;
        }
        // C(v,u) C(ℓ−v, k−u) / C(ℓ,k)
        if self.population <= 120 {
            binomial(self.successes, u) * binomial(self.population - self.successes, self.draws - u)
                / binomial(self.population, self.draws)
        } else {
            (ln_binomial(self.successes, u)
                + ln_binomial(self.population - self.successes, self.draws - u)
                - ln_binomial(self.population, self.draws))
            .exp()
        }
    }

    /// Upper-tail mass `P(U ≥ u)`.
    pub fn sf_geq(&self, u: u64) -> f64 {
        let (lo, hi) = self.support();
        (u.max(lo)..=hi).map(|i| self.pmf(i)).sum()
    }

    /// Mean `k v / ℓ` (0 for an empty urn).
    pub fn mean(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.draws as f64 * self.successes as f64 / self.population as f64
    }

    /// Variance `k (v/ℓ)(1 − v/ℓ)(ℓ−k)/(ℓ−1)` (0 for urns of size ≤ 1).
    pub fn variance(&self) -> f64 {
        if self.population <= 1 {
            return 0.0;
        }
        let l = self.population as f64;
        let p = self.successes as f64 / l;
        self.draws as f64 * p * (1.0 - p) * (l - self.draws as f64) / (l - 1.0)
    }

    /// Samples a variate by simulating the sequential draw, which is exact
    /// and O(k).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut remaining = self.population;
        let mut red_remaining = self.successes;
        let mut drawn_red = 0;
        for _ in 0..self.draws {
            debug_assert!(remaining > 0);
            if rng.random_range(0..remaining) < red_remaining {
                drawn_red += 1;
                red_remaining -= 1;
            }
            remaining -= 1;
        }
        drawn_red
    }
}

/// Direct functional form of the paper's `q(k, ℓ, u, v)`.
///
/// Out-of-range parameter combinations (e.g. `k > ℓ`) yield probability 0
/// rather than an error, which matches how the transition-matrix derivation
/// uses the quantity inside sums over constrained ranges.
///
/// ```
/// use pollux_prob::hypergeometric_q;
/// assert!((hypergeometric_q(3, 10, 2, 4) - 0.3).abs() < 1e-12);
/// assert_eq!(hypergeometric_q(11, 10, 2, 4), 0.0);
/// ```
pub fn hypergeometric_q(k: u64, l: u64, u: u64, v: u64) -> f64 {
    if v > l || k > l {
        return 0.0;
    }
    match Hypergeometric::new(l, v, k) {
        Ok(h) => h.pmf(u),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn support_bounds() {
        let h = Hypergeometric::new(10, 7, 6).unwrap();
        assert_eq!(h.support(), (3, 6));
        let h = Hypergeometric::new(10, 2, 3).unwrap();
        assert_eq!(h.support(), (0, 2));
    }

    #[test]
    fn pmf_sums_to_one() {
        for l in 1..=30u64 {
            for v in 0..=l {
                for k in 0..=l {
                    let h = Hypergeometric::new(l, v, k).unwrap();
                    let (lo, hi) = h.support();
                    let total: f64 = (lo..=hi).map(|u| h.pmf(u)).sum();
                    assert!(
                        (total - 1.0).abs() < 1e-10,
                        "l={l} v={v} k={k}: total={total}"
                    );
                }
            }
        }
    }

    #[test]
    fn pmf_zero_outside_support() {
        let h = Hypergeometric::new(10, 4, 3).unwrap();
        assert_eq!(h.pmf(4), 0.0);
        let h = Hypergeometric::new(10, 7, 6).unwrap();
        assert_eq!(h.pmf(2), 0.0);
    }

    #[test]
    fn known_value() {
        // P(2 red | draw 3 from 10 with 4 red) = C(4,2)C(6,1)/C(10,3) = 36/120.
        let h = Hypergeometric::new(10, 4, 3).unwrap();
        assert!((h.pmf(2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Hypergeometric::new(5, 6, 2).is_err());
        assert!(Hypergeometric::new(5, 2, 6).is_err());
    }

    #[test]
    fn mean_and_variance_match_moments() {
        let h = Hypergeometric::new(20, 8, 5).unwrap();
        let (lo, hi) = h.support();
        let mean: f64 = (lo..=hi).map(|u| u as f64 * h.pmf(u)).sum();
        let var: f64 = (lo..=hi)
            .map(|u| (u as f64 - mean).powi(2) * h.pmf(u))
            .sum();
        assert!((mean - h.mean()).abs() < 1e-10);
        assert!((var - h.variance()).abs() < 1e-10);
    }

    #[test]
    fn tail_sum() {
        let h = Hypergeometric::new(10, 4, 3).unwrap();
        let manual: f64 = (2..=3).map(|u| h.pmf(u)).sum();
        assert!((h.sf_geq(2) - manual).abs() < 1e-14);
        assert!((h.sf_geq(0) - 1.0).abs() < 1e-12);
        assert_eq!(h.sf_geq(7), 0.0);
    }

    #[test]
    fn q_function_handles_out_of_range() {
        assert_eq!(hypergeometric_q(3, 2, 1, 1), 0.0); // k > l
        assert_eq!(hypergeometric_q(1, 2, 0, 3), 0.0); // v > l
        assert!((hypergeometric_q(0, 5, 0, 2) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sampling_matches_mean() {
        let h = Hypergeometric::new(30, 12, 10).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| h.sample(&mut rng)).sum();
        let emp_mean = sum as f64 / n as f64;
        // std-err ≈ sqrt(var/n) ≈ 0.01; allow 5 sigma.
        assert!(
            (emp_mean - h.mean()).abs() < 0.06,
            "empirical {emp_mean} vs {}",
            h.mean()
        );
    }

    #[test]
    fn sampling_stays_in_support() {
        let h = Hypergeometric::new(9, 7, 6).unwrap();
        let (lo, hi) = h.support();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u = h.sample(&mut rng);
            assert!(u >= lo && u <= hi);
        }
    }

    #[test]
    fn log_space_path_consistent_with_exact() {
        // Large urn forces the log path; compare against a mid-size urn
        // ratio identity: q(k,l,u,v) with scaled parameters should still sum
        // to 1.
        let h = Hypergeometric::new(500, 200, 50).unwrap();
        let (lo, hi) = h.support();
        let total: f64 = (lo..=hi).map(|u| h.pmf(u)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }
}
