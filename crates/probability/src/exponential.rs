//! Exponential variates for event inter-arrival times.
//!
//! The discrete-event engine models churn as Poisson processes; the only
//! primitive it needs is an exponential sampler.

use rand::RngExt;

/// Samples `Exp(rate)` by inversion.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
///
/// ```
/// use rand::{SeedableRng, rngs::StdRng};
/// let mut rng = StdRng::seed_from_u64(3);
/// let x = pollux_prob::exponential::sample(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
pub fn sample<R: rand::Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite, got {rate}"
    );
    // random() yields [0, 1); use 1 - u to avoid ln(0).
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Fills `out` with independent `Exp(rate)` variates — the batched form of
/// [`sample`].
///
/// The uniforms are drawn in one pass and the log transform applied in a
/// second, so the generator recurrence and the `ln` evaluations each run
/// as a tight independent loop instead of alternating per draw — the
/// discrete-event hot loops refill a small per-stream buffer of
/// inter-arrival gaps through this in one call. Consumes exactly
/// `out.len()` draws from `rng`, and each slot holds the same value
/// [`sample`] would have produced from that draw.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
///
/// ```
/// use rand::{SeedableRng, rngs::StdRng};
/// let mut batched = StdRng::seed_from_u64(3);
/// let mut buf = [0.0f64; 8];
/// pollux_prob::exponential::fill(&mut batched, 2.0, &mut buf);
/// let mut one_by_one = StdRng::seed_from_u64(3);
/// for &x in &buf {
///     assert_eq!(x, pollux_prob::exponential::sample(&mut one_by_one, 2.0));
/// }
/// ```
pub fn fill<R: rand::Rng + ?Sized>(rng: &mut R, rate: f64, out: &mut [f64]) {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite, got {rate}"
    );
    for slot in out.iter_mut() {
        *slot = rng.random();
    }
    for slot in out.iter_mut() {
        *slot = -(1.0 - *slot).ln() / rate;
    }
}

/// Inverse CDF of `Exp(rate)` at probability `p`.
///
/// # Panics
///
/// Panics if `rate <= 0` or `p` is outside `[0, 1)`.
pub fn quantile(rate: f64, p: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
    -(1.0 - p).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn samples_nonnegative_and_mean_matches() {
        let mut rng = StdRng::seed_from_u64(99);
        let rate = 4.0;
        let n = 100_000;
        let mut total = 0.0;
        for _ in 0..n {
            let x = sample(&mut rng, rate);
            assert!(x >= 0.0);
            total += x;
        }
        let mean = total / n as f64;
        // Mean 1/rate = 0.25; sd of mean ≈ 0.25/sqrt(n) ≈ 8e-4; allow 6 sigma.
        assert!((mean - 0.25).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn fill_matches_sequential_samples() {
        // Batched and one-by-one sampling consume the same stream and
        // produce bit-identical variates — the DES determinism contract
        // does not care *when* a cluster's gaps were drawn, only that the
        // values are a fixed function of its stream.
        for rate in [0.3, 1.0, 2.5] {
            let mut a = StdRng::seed_from_u64(41);
            let mut b = StdRng::seed_from_u64(41);
            let mut buf = [0.0f64; 13];
            fill(&mut a, rate, &mut buf);
            for &x in &buf {
                assert_eq!(x, sample(&mut b, rate));
                assert!(x >= 0.0);
            }
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!((quantile(1.0, 0.5) - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(quantile(2.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn bad_rate_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        sample(&mut rng, 0.0);
    }
}
