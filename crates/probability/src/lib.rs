//! Combinatorics and discrete probability distributions.
//!
//! This crate provides the probabilistic kernels of the Pollux reproduction
//! of *Modeling and Evaluating Targeted Attacks in Large Scale Dynamic
//! Systems* (DSN 2011):
//!
//! * [`comb`] — exact and logarithmic binomial coefficients.
//! * [`Hypergeometric`] — the distribution `q(k, ℓ, u, v)` from the paper:
//!   the probability of drawing `u` red balls when `k` balls are drawn
//!   without replacement from an urn of `ℓ` balls containing `v` red ones.
//!   It drives the randomized core-maintenance kernel `τ(x, a, b)` and the
//!   adversary's Rule 1 (Relation 2).
//! * [`Binomial`] — used by the paper's initial distribution `β`
//!   (Relation 3).
//! * [`AliasTable`] — O(1) sampling from arbitrary finite distributions
//!   (Walker's method), used by the Monte-Carlo simulators.
//! * [`exponential`] — exponential variates for the discrete-event engine.
//! * [`tolerance`] — the shared agreement-tolerance constants every
//!   differential check (unit suites, sweep validation kinds, the
//!   `pollux-fuzz` oracle) pins itself to.
//!
//! # Example
//!
//! ```
//! use pollux_prob::Hypergeometric;
//!
//! // Drawing 3 from an urn of 10 with 4 red: P(exactly 2 red).
//! let h = Hypergeometric::new(10, 4, 3).unwrap();
//! let p = h.pmf(2);
//! assert!((p - 0.3).abs() < 1e-12);
//! ```

mod alias;
mod binomial;
pub mod comb;
pub mod exponential;
mod hypergeometric;
pub mod tolerance;

pub use alias::AliasTable;
pub use binomial::{wilson_interval, Binomial};
pub use hypergeometric::{hypergeometric_q, Hypergeometric};

use std::error::Error;
use std::fmt;

/// Errors produced when constructing distributions from inconsistent
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProbError {
    /// Parameters violate the distribution's constraints.
    InvalidParameters(String),
    /// A weight vector was empty, negative or had zero total mass.
    InvalidWeights(String),
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            ProbError::InvalidWeights(msg) => write!(f, "invalid weights: {msg}"),
        }
    }
}

impl Error for ProbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ProbError::InvalidParameters("k > l".into());
        assert!(e.to_string().contains("k > l"));
        let e = ProbError::InvalidWeights("empty".into());
        assert!(e.to_string().contains("empty"));
    }
}
