use rand::RngExt;

use crate::comb::{binomial, ln_binomial};
use crate::ProbError;

/// The binomial distribution `Bin(n, p)`.
///
/// The paper's initial distribution `β` (Relation 3) draws the number of
/// malicious peers in the core and spare sets from independent binomials
/// with success probability `μ`.
///
/// # Example
///
/// ```
/// use pollux_prob::Binomial;
///
/// let b = Binomial::new(7, 0.25).unwrap();
/// let total: f64 = (0..=7).map(|x| b.pmf(x)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `Bin(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameters`] when `p` is outside `[0, 1]`
    /// or not finite.
    pub fn new(n: u64, p: f64) -> Result<Self, ProbError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(ProbError::InvalidParameters(format!(
                "success probability {p} not in [0, 1]"
            )));
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of exactly `x` successes; 0 when `x > n`.
    pub fn pmf(&self, x: u64) -> f64 {
        if x > self.n {
            return 0.0;
        }
        // Handle the degenerate endpoints exactly: 0^0 = 1 convention.
        if self.p == 0.0 {
            return if x == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if x == self.n { 1.0 } else { 0.0 };
        }
        if self.n <= 120 {
            binomial(self.n, x) * self.p.powi(x as i32) * (1.0 - self.p).powi((self.n - x) as i32)
        } else {
            (ln_binomial(self.n, x)
                + x as f64 * self.p.ln()
                + (self.n - x) as f64 * (1.0 - self.p).ln())
            .exp()
        }
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: u64) -> f64 {
        (0..=x.min(self.n))
            .map(|i| self.pmf(i))
            .sum::<f64>()
            .min(1.0)
    }

    /// Mean `n p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n p (1 − p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Samples by `n` Bernoulli trials (exact; `n` is small throughout the
    /// model).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (0..self.n).filter(|_| rng.random_bool(self.p)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        for n in [0u64, 1, 5, 13] {
            for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
                let b = Binomial::new(n, p).unwrap();
                let total: f64 = (0..=n).map(|x| b.pmf(x)).sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn known_values() {
        let b = Binomial::new(7, 0.3).unwrap();
        // C(7,2) 0.3^2 0.7^5 = 21 * 0.09 * 0.16807
        assert!((b.pmf(2) - 21.0 * 0.09 * 0.16807).abs() < 1e-12);
        assert_eq!(b.pmf(8), 0.0);
    }

    #[test]
    fn degenerate_endpoints() {
        let b = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b.pmf(0), 1.0);
        assert_eq!(b.pmf(1), 0.0);
        let b = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b.pmf(5), 1.0);
        assert_eq!(b.pmf(4), 0.0);
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Binomial::new(3, -0.1).is_err());
        assert!(Binomial::new(3, 1.1).is_err());
        assert!(Binomial::new(3, f64::NAN).is_err());
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let b = Binomial::new(9, 0.4).unwrap();
        let mut prev = 0.0;
        for x in 0..=9 {
            let c = b.cdf(x);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((b.cdf(9) - 1.0).abs() < 1e-12);
        assert!((b.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments_match_pmf() {
        let b = Binomial::new(11, 0.35).unwrap();
        let mean: f64 = (0..=11).map(|x| x as f64 * b.pmf(x)).sum();
        let var: f64 = (0..=11).map(|x| (x as f64 - mean).powi(2) * b.pmf(x)).sum();
        assert!((mean - b.mean()).abs() < 1e-10);
        assert!((var - b.variance()).abs() < 1e-10);
    }

    #[test]
    fn large_n_uses_log_space() {
        let b = Binomial::new(500, 0.3).unwrap();
        let total: f64 = (0..=500).map(|x| b.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_mean() {
        let b = Binomial::new(20, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| b.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - b.mean()).abs() < 0.1, "empirical {emp}");
    }
}
