use rand::RngExt;

use crate::comb::{binomial, ln_binomial};
use crate::ProbError;

/// The binomial distribution `Bin(n, p)`.
///
/// The paper's initial distribution `β` (Relation 3) draws the number of
/// malicious peers in the core and spare sets from independent binomials
/// with success probability `μ`.
///
/// # Example
///
/// ```
/// use pollux_prob::Binomial;
///
/// let b = Binomial::new(7, 0.25).unwrap();
/// let total: f64 = (0..=7).map(|x| b.pmf(x)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `Bin(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameters`] when `p` is outside `[0, 1]`
    /// or not finite.
    pub fn new(n: u64, p: f64) -> Result<Self, ProbError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(ProbError::InvalidParameters(format!(
                "success probability {p} not in [0, 1]"
            )));
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of exactly `x` successes; 0 when `x > n`.
    pub fn pmf(&self, x: u64) -> f64 {
        if x > self.n {
            return 0.0;
        }
        // Handle the degenerate endpoints exactly: 0^0 = 1 convention.
        if self.p == 0.0 {
            return if x == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if x == self.n { 1.0 } else { 0.0 };
        }
        if self.n <= 120 {
            binomial(self.n, x) * self.p.powi(x as i32) * (1.0 - self.p).powi((self.n - x) as i32)
        } else {
            (ln_binomial(self.n, x)
                + x as f64 * self.p.ln()
                + (self.n - x) as f64 * (1.0 - self.p).ln())
            .exp()
        }
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: u64) -> f64 {
        (0..=x.min(self.n))
            .map(|i| self.pmf(i))
            .sum::<f64>()
            .min(1.0)
    }

    /// Mean `n p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n p (1 − p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Samples by `n` Bernoulli trials (exact; `n` is small throughout the
    /// model).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (0..self.n).filter(|_| rng.random_bool(self.p)).count() as u64
    }
}

/// The Wilson score interval for a binomial proportion: the `(lo, hi)`
/// confidence bounds on the success probability after observing
/// `successes` out of `trials`, at normal quantile `z` (1.96 for 95 %).
///
/// Unlike the naive `p̂ ± z·√(p̂(1−p̂)/n)` interval, Wilson's bounds stay
/// inside `[0, 1]` and remain informative at the extremes (`p̂ = 0` or
/// `1`), which is exactly where absorption-frequency checks live: a run
/// that observes zero polluted merges still yields a non-degenerate upper
/// bound to compare against the Markov prediction.
///
/// With `trials == 0` the interval is the vacuous `(0, 1)`.
///
/// # Example
///
/// ```
/// use pollux_prob::wilson_interval;
///
/// let (lo, hi) = wilson_interval(56, 1000, 1.96);
/// assert!(lo < 0.056 && 0.056 < hi);
/// assert!(hi - lo < 0.03);
/// // Zero successes still bound p away from large values.
/// let (lo0, hi0) = wilson_interval(0, 1000, 1.96);
/// assert_eq!(lo0, 0.0);
/// assert!(hi0 < 0.005);
/// ```
///
/// # Panics
///
/// Panics when `successes > trials` or `z` is not a positive finite
/// number.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(
        successes <= trials,
        "{successes} successes in {trials} trials"
    );
    assert!(
        z.is_finite() && z > 0.0,
        "z = {z} must be a positive quantile"
    );
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        for n in [0u64, 1, 5, 13] {
            for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
                let b = Binomial::new(n, p).unwrap();
                let total: f64 = (0..=n).map(|x| b.pmf(x)).sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn known_values() {
        let b = Binomial::new(7, 0.3).unwrap();
        // C(7,2) 0.3^2 0.7^5 = 21 * 0.09 * 0.16807
        assert!((b.pmf(2) - 21.0 * 0.09 * 0.16807).abs() < 1e-12);
        assert_eq!(b.pmf(8), 0.0);
    }

    #[test]
    fn degenerate_endpoints() {
        let b = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b.pmf(0), 1.0);
        assert_eq!(b.pmf(1), 0.0);
        let b = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b.pmf(5), 1.0);
        assert_eq!(b.pmf(4), 0.0);
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Binomial::new(3, -0.1).is_err());
        assert!(Binomial::new(3, 1.1).is_err());
        assert!(Binomial::new(3, f64::NAN).is_err());
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let b = Binomial::new(9, 0.4).unwrap();
        let mut prev = 0.0;
        for x in 0..=9 {
            let c = b.cdf(x);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((b.cdf(9) - 1.0).abs() < 1e-12);
        assert!((b.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments_match_pmf() {
        let b = Binomial::new(11, 0.35).unwrap();
        let mean: f64 = (0..=11).map(|x| x as f64 * b.pmf(x)).sum();
        let var: f64 = (0..=11).map(|x| (x as f64 - mean).powi(2) * b.pmf(x)).sum();
        assert!((mean - b.mean()).abs() < 1e-10);
        assert!((var - b.variance()).abs() < 1e-10);
    }

    #[test]
    fn large_n_uses_log_space() {
        let b = Binomial::new(500, 0.3).unwrap();
        let total: f64 = (0..=500).map(|x| b.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_mean() {
        let b = Binomial::new(20, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| b.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - b.mean()).abs() < 0.1, "empirical {emp}");
    }

    #[test]
    fn wilson_interval_brackets_the_true_proportion() {
        // Coverage sanity: the interval contains p̂ and tightens with n.
        let (lo, hi) = wilson_interval(500, 1000, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        let (lo_big, hi_big) = wilson_interval(50_000, 100_000, 1.96);
        assert!(hi_big - lo_big < hi - lo);
        // Monotone in z.
        let (lo3, hi3) = wilson_interval(500, 1000, 3.0);
        assert!(lo3 < lo && hi < hi3);
    }

    #[test]
    fn wilson_interval_extremes_stay_in_unit_range() {
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo, hi) = wilson_interval(50, 50, 1.96);
        assert!(lo > 0.85 && lo < 1.0);
        assert_eq!(hi, 1.0);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "successes")]
    fn wilson_interval_rejects_impossible_counts() {
        wilson_interval(5, 4, 1.96);
    }
}
