//! The agreement-tolerance constants shared by every differential check.
//!
//! Three independent evaluation paths (dense analytic, sparse analytic,
//! whole-overlay DES) are continuously cross-examined — by the unit
//! suites (`tests/sparse_equivalence.rs`, `tests/defense_duel.rs`,
//! `tests/des_validation.rs`), by the sweep engine's validation kinds and
//! by the `pollux-fuzz` differential oracle. They must all pin agreement
//! to the **same** criteria, or a tolerance bumped in one place would
//! silently weaken the others. This module is the single source of those
//! numbers; nothing else in the workspace is allowed to hard-code them.

/// Relative tolerance of deterministic analytic agreement: the dense and
/// sparse pipelines evaluate the same chain through different linear
/// algebra, so they agree to solver round-off — nine decimal digits
/// relative — on every sweep-visible metric.
pub const ANALYTIC_REL_TOL: f64 = 1e-9;

/// The Wilson/CI z-quantile of statistical (analytic-vs-simulation)
/// agreement criteria. Five sigmas keeps the per-comparison false-alarm
/// probability below 6·10⁻⁷, so thousands of fuzzed comparisons stay
/// deterministic-green in CI while a genuine model drift of a few
/// interval widths is still caught.
pub const AGREEMENT_SIGMAS: f64 = 5.0;

/// Floor on confidence half-widths in CI-based criteria: a degenerate
/// zero-variance sample (every cluster absorbed identically) must not
/// collapse the acceptance band to a point and flag solver round-off as
/// disagreement.
pub const CI_HALF_WIDTH_FLOOR: f64 = 1e-6;

/// `true` when `a` and `b` agree to [`ANALYTIC_REL_TOL`] relative (with
/// an absolute floor of the same magnitude for near-zero values) — the
/// dense-vs-sparse agreement predicate used by the equivalence suite and
/// the fuzzer's analytic oracle pair.
#[must_use]
pub fn analytic_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= ANALYTIC_REL_TOL * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_is_relative_with_unit_floor() {
        assert!(analytic_close(0.0, 0.0));
        assert!(analytic_close(1.0, 1.0 + 0.9e-9));
        assert!(!analytic_close(1.0, 1.0 + 1.1e-9));
        // Relative at large magnitudes…
        assert!(analytic_close(1e12, 1e12 * (1.0 + 0.9e-9)));
        assert!(!analytic_close(1e12, 1e12 * (1.0 + 1.1e-9)));
        // …absolute (unit-floored) near zero.
        assert!(analytic_close(1e-15, -1e-15));
    }

    #[test]
    fn constants_are_the_pinned_criteria() {
        // These values are load-bearing across the test suites and the
        // fuzzer; changing them is a contract change, not a tweak.
        assert_eq!(ANALYTIC_REL_TOL, 1e-9);
        assert_eq!(AGREEMENT_SIGMAS, 5.0);
        assert_eq!(CI_HALF_WIDTH_FLOOR, 1e-6);
    }
}
