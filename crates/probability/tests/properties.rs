//! Property-based tests for the probability kernels.

use proptest::prelude::*;

use pollux_prob::comb::{binomial, binomial_exact, ln_binomial};
use pollux_prob::{hypergeometric_q, AliasTable, Binomial, Hypergeometric};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hypergeometric_pmf_sums_to_one(l in 1u64..60, v_frac in 0.0f64..=1.0, k_frac in 0.0f64..=1.0) {
        let v = (l as f64 * v_frac) as u64;
        let k = (l as f64 * k_frac) as u64;
        let h = Hypergeometric::new(l, v, k).unwrap();
        let (lo, hi) = h.support();
        let total: f64 = (lo..=hi).map(|u| h.pmf(u)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "l={l} v={v} k={k}: {total}");
    }

    #[test]
    fn vandermonde_identity(l in 1u64..40, v in 0u64..40, k in 0u64..40) {
        // Σ_u C(v,u) C(l−v, k−u) = C(l, k): exactly the normalization of
        // the q(k, l, u, v) kernel.
        prop_assume!(v <= l && k <= l);
        let lhs: f64 = (0..=k).map(|u| binomial(v, u) * binomial(l - v, k - u)).sum();
        let rhs = binomial(l, k);
        prop_assert!((lhs / rhs - 1.0).abs() < 1e-10);
    }

    #[test]
    fn hypergeometric_symmetry_in_draws_and_successes(l in 1u64..40, v in 0u64..40, k in 0u64..40, u in 0u64..40) {
        // q(k, l, u, v) = q(v, l, u, k): drawing k and counting red(v) is
        // symmetric to drawing v and counting red(k).
        prop_assume!(v <= l && k <= l);
        let a = hypergeometric_q(k, l, u, v);
        let b = hypergeometric_q(v, l, u, k);
        prop_assert!((a - b).abs() < 1e-10, "a={a} b={b}");
    }

    #[test]
    fn hypergeometric_mean_identity(l in 1u64..50, v in 0u64..50, k in 0u64..50) {
        prop_assume!(v <= l && k <= l);
        let h = Hypergeometric::new(l, v, k).unwrap();
        let (lo, hi) = h.support();
        let mean: f64 = (lo..=hi).map(|u| u as f64 * h.pmf(u)).sum();
        prop_assert!((mean - h.mean()).abs() < 1e-9);
    }

    #[test]
    fn binomial_pmf_sums_and_recursion(n in 0u64..40, p in 0.0f64..=1.0) {
        let b = Binomial::new(n, p).unwrap();
        let total: f64 = (0..=n).map(|x| b.pmf(x)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Pascal-style ratio check where defined.
        if p > 0.0 && p < 1.0 && n > 0 {
            for x in 0..n {
                let ratio = b.pmf(x + 1) / b.pmf(x);
                let want = (n - x) as f64 / (x + 1) as f64 * p / (1.0 - p);
                prop_assert!((ratio / want - 1.0).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn binomial_exact_matches_log_space(n in 0u64..80, k in 0u64..80) {
        prop_assume!(k <= n);
        let exact = binomial_exact(n, k).unwrap() as f64;
        let via_ln = ln_binomial(n, k).exp();
        prop_assert!((via_ln / exact - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alias_table_preserves_normalized_weights(weights in proptest::collection::vec(0.0f64..10.0, 1..12)) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let table = AliasTable::new(&weights).unwrap();
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            prop_assert!((table.weight(i) - w / total).abs() < 1e-12);
        }
    }

    #[test]
    fn hypergeometric_samples_in_support(l in 1u64..30, v in 0u64..30, k in 0u64..30, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        prop_assume!(v <= l && k <= l);
        let h = Hypergeometric::new(l, v, k).unwrap();
        let (lo, hi) = h.support();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let u = h.sample(&mut rng);
            prop_assert!(u >= lo && u <= hi);
        }
    }

    #[test]
    fn binomial_samples_bounded(n in 0u64..30, p in 0.0f64..=1.0, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let b = Binomial::new(n, p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(b.sample(&mut rng) <= n);
        }
    }
}
