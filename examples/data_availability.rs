//! Data availability under targeted attacks: stores keys in the DHT layer,
//! pollutes clusters at the model's predicted steady rate, and measures
//! how many keys become unreachable (denied by their owner) versus merely
//! slower (transit drops recoverable by redundancy).
//!
//! ```text
//! cargo run --release --example data_availability
//! ```

use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_overlay::storage::{GetOutcome, KeyValueStore};
use pollux_overlay::{Cluster, ClusterParams, Label, Member, NodeId, Overlay, PeerId};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Builds a 32-cluster overlay, polluting each cluster independently with
/// probability `p_polluted`.
fn build(p_polluted: f64, rng: &mut StdRng) -> Overlay {
    let params = ClusterParams::new(4, 8).expect("valid sizes");
    let mut clusters = Vec::new();
    let mut next = 0u64;
    for leaf in 0..32usize {
        let bits: Vec<bool> = (0..5).map(|b| (leaf >> (4 - b)) & 1 == 1).collect();
        let polluted = p_polluted > 0.0 && rng.random_bool(p_polluted);
        let member = |next: &mut u64, malicious: bool| {
            *next += 1;
            Member {
                peer: PeerId(*next),
                malicious,
                id: NodeId::from_data(&next.to_be_bytes()),
            }
        };
        let core: Vec<Member> = (0..4)
            .map(|i| member(&mut next, polluted && i < 2))
            .collect();
        let spare: Vec<Member> = (0..3).map(|_| member(&mut next, false)).collect();
        clusters.push(Cluster::new(Label::from_bits(bits), params, core, spare).unwrap());
    }
    Overlay::bootstrap(params, clusters).expect("balanced tree")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);
    let n_keys = 2000u64;

    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "mu", "p(polluted)", "keys hostage", "get denied", "get found"
    );
    for &mu in &[0.0, 0.15, 0.30] {
        let p_polluted = if mu == 0.0 {
            0.0
        } else {
            // Steady pollution level of a regenerating cluster population.
            let params = ModelParams::paper_defaults().with_mu(mu).with_d(0.9);
            ClusterAnalysis::new(&params, InitialCondition::Delta)?
                .steady_state_fractions()?
                .1
        };
        let overlay = build(p_polluted, &mut rng);
        let drops = |c: &Cluster| c.is_polluted();

        // Populate while the network is healthy (ignore drops on put so
        // the measurement isolates read availability).
        let mut store = KeyValueStore::new();
        let labels = overlay.labels();
        for i in 0..n_keys {
            let key = NodeId::from_data(&i.to_be_bytes());
            let from = labels[rng.random_range(0..labels.len())].clone();
            store.put(&overlay, &from, key, i.to_be_bytes().to_vec(), &|_| false)?;
        }

        let hostage = store.fraction_owned_by(&overlay, &drops);
        let mut found = 0u64;
        let mut denied = 0u64;
        for i in 0..n_keys {
            let key = NodeId::from_data(&i.to_be_bytes());
            let from = labels[rng.random_range(0..labels.len())].clone();
            match store.get(&overlay, &from, &key, &drops)? {
                GetOutcome::Found(_) => found += 1,
                GetOutcome::Denied { .. } => denied += 1,
                GetOutcome::NotFound => unreachable!("all keys were stored"),
            }
        }
        println!(
            "{:>4.0}% {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
            mu * 100.0,
            100.0 * p_polluted,
            100.0 * hostage,
            100.0 * denied as f64 / n_keys as f64,
            100.0 * found as f64 / n_keys as f64,
        );
    }
    println!("\nDenied lookups track the hostage fraction: the induced-churn");
    println!("defence keeps the polluted share — and hence data loss — small.");
    Ok(())
}
