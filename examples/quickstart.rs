//! Quickstart: build the paper's model for one parameter set, compute the
//! headline metrics, and cross-check them with a quick Monte-Carlo run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pollux::simulation;
use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cluster-based overlay with core size C = 7 (tolerating c = 2
    // malicious core members), spare bound Δ = 7, under a 20 % adversary,
    // with identifier lifetimes calibrated so a peer survives each event
    // with probability d = 0.9, and protocol_1 (shuffle one peer per
    // core departure).
    let params = ModelParams::paper_defaults()
        .with_mu(0.20)
        .with_d(0.90)
        .with_k(1)?;
    println!("model: {params}");
    if let Some(l) = params.lifetime_l() {
        println!("incarnation lifetime L = {l:.2} time units (paper calibration)");
    }

    // --- analytical metrics (Relations 5-9) -----------------------------
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
    let e_safe = analysis.expected_safe_events()?;
    let e_polluted = analysis.expected_polluted_events()?;
    let split = analysis.absorption_split()?;
    println!("\nanalytical (initially clean cluster, alpha = delta):");
    println!("  E(T_S) = {e_safe:.3} events spent safe before the cluster merges/splits");
    println!("  E(T_P) = {e_polluted:.3} events spent polluted");
    println!(
        "  absorption: merge-safe {:.1}%  split-safe {:.1}%  merge-polluted {:.2}%",
        100.0 * split.safe_merge,
        100.0 * split.safe_split,
        100.0 * split.polluted_merge,
    );

    // --- Monte-Carlo cross-check ----------------------------------------
    let strategy = TargetedStrategy::new(params.k(), params.nu()).expect("validated parameters");
    let report = simulation::estimate(
        &params,
        &InitialCondition::Delta,
        &strategy,
        20_000,
        42,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    println!("\nevent-level simulation (20k replications):");
    println!("  T_S  = {}", report.safe_events);
    println!("  T_P  = {}", report.polluted_events);
    println!(
        "  absorption: merge-safe {:.1}%  split-safe {:.1}%  merge-polluted {:.2}%",
        100.0 * report.absorption.0,
        100.0 * report.absorption.1,
        100.0 * report.absorption.2,
    );

    let agree = (report.safe_events.mean - e_safe).abs() < 3.0 * report.safe_events.ci_half_width;
    println!(
        "\nmodel and simulation {}",
        if agree {
            "agree"
        } else {
            "DISAGREE (unexpected)"
        }
    );
    Ok(())
}
