//! Tuning the induced churn: how long may peers keep one identifier?
//!
//! The paper's conclusion (ii): choosing the incarnation lifetime `L`
//! adequately reduces attack propagation *without* keeping the system in
//! hyper-activity. This example sweeps the survival probability `d`
//! (equivalently `L`), finds the largest `L` that still keeps the
//! polluted-merge probability under a target, and prints the trade-off
//! table an operator would use.
//!
//! ```text
//! cargo run --release --example churn_tuning
//! ```

use pollux::{ClusterAnalysis, InitialCondition, ModelParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mu = 0.25; // assumed adversarial fraction
    let target = 0.05; // operator's ceiling on p(polluted merge)

    println!(
        "mu = {:.0}%, target p(AmP) <= {:.0}%",
        mu * 100.0,
        target * 100.0
    );
    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>12}",
        "d", "L", "E(T_S)", "E(T_P)", "p(AmP)"
    );

    let mut best: Option<(f64, f64)> = None;
    for &d in &[0.0, 0.3, 0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 0.99] {
        let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
        let e_s = analysis.expected_safe_events()?;
        let e_p = analysis.expected_polluted_events()?;
        let p_amp = analysis.absorption_split()?.polluted_merge;
        let l = params.lifetime_l().unwrap_or(0.0);
        println!(
            "{:>6} {:>10.2} {:>10.3} {:>10.3} {:>11.2}%",
            d,
            l,
            e_s,
            e_p,
            100.0 * p_amp
        );
        if p_amp <= target {
            best = Some((d, l));
        }
    }

    match best {
        Some((d, l)) => {
            println!("\nLargest identifier lifetime meeting the target: d = {d} (L = {l:.2}).",);
            println!("Peers re-key only every ~{l:.0} time units — no hyper-activity");
            println!("needed; pushing peers smoothly to unpredictable regions suffices.");
        }
        None => println!("\nNo surveyed lifetime meets the target — lower mu or raise C."),
    }
    Ok(())
}
