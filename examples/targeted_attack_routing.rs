//! Routing impact of targeted attacks: builds a real prefix-tree overlay
//! out of registry peers, pollutes clusters at the rate the analytical
//! model predicts, and measures how lookup delivery degrades — with and
//! without redundant routing.
//!
//! This is the scenario the paper's introduction motivates: polluted
//! clusters drop or misroute messages addressed to the keys they cover.
//! Safe clusters respect the protocol's containment guarantee (at most
//! `c = ⌊(C−1)/3⌋` malicious core members); the fraction of polluted
//! clusters is taken from the model's polluted-merge probability.
//!
//! ```text
//! cargo run --release --example targeted_attack_routing
//! ```

use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_overlay::{
    routing, Cluster, ClusterParams, Label, Member, NodeId, Overlay, PeerRegistry,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Builds a balanced overlay with `2^depth` clusters whose members come
/// from `registry`. A cluster is polluted with probability `p_polluted`
/// (quorum exceeded); safe clusters carry at most `c` malicious core
/// members, reflecting the protocol's containment.
fn build_overlay(
    depth: usize,
    registry: &PeerRegistry,
    mu: f64,
    p_polluted: f64,
    rng: &mut StdRng,
) -> (Overlay, usize) {
    let params = ClusterParams::new(4, 8).expect("valid sizes");
    let quorum = params.quorum();
    let mut clusters = Vec::new();
    let mut polluted_count = 0;
    let mut next_peer = 0usize;
    for leaf in 0..(1usize << depth) {
        let bits: Vec<bool> = (0..depth)
            .map(|b| (leaf >> (depth - 1 - b)) & 1 == 1)
            .collect();
        let label = Label::from_bits(bits);
        let polluted = mu > 0.0 && rng.random_bool(p_polluted);
        if polluted {
            polluted_count += 1;
        }
        let mut take = |force_malicious: bool, budget: &mut usize, rng: &mut StdRng| -> Member {
            let peer = &registry.peers()[next_peer % registry.len()];
            next_peer += 1;
            // Containment: honest selection never exceeds the budget.
            let malicious = force_malicious || (mu > 0.0 && rng.random_bool(mu) && *budget > 0);
            if malicious && !force_malicious {
                *budget -= 1;
            }
            Member {
                peer: peer.id,
                malicious,
                id: NodeId::from_data(&(next_peer as u64).to_be_bytes()),
            }
        };
        // Safe clusters keep at most `quorum` malicious core members.
        let mut core_budget = quorum;
        let core: Vec<Member> = (0..params.core_size())
            .map(|i| take(polluted && i <= quorum, &mut core_budget, rng))
            .collect();
        let mut spare_budget = 4; // spares are unconstrained by the quorum
        let spare: Vec<Member> = (0..4)
            .map(|_| take(false, &mut spare_budget, rng))
            .collect();
        clusters.push(Cluster::new(label, params, core, spare).expect("constructed well-formed"));
    }
    (
        Overlay::bootstrap(params, clusters).expect("balanced tree covers the space"),
        polluted_count,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2011);

    println!("mu      p(polluted cluster)    delivery    delivery (3x redundant)");
    for &mu in &[0.0, 0.10, 0.20, 0.30] {
        let registry = PeerRegistry::generate(4096, mu, &mut rng);
        // Predicted probability that a cluster is polluted when it
        // dissolves, from the analytical model (polluted-merge mass).
        let p_polluted = if mu == 0.0 {
            0.0
        } else {
            let params = ModelParams::paper_defaults().with_mu(mu).with_d(0.9);
            ClusterAnalysis::new(&params, InitialCondition::Delta)?
                .absorption_split()?
                .polluted_merge
        };

        let (overlay, polluted_clusters) = build_overlay(6, &registry, mu, p_polluted, &mut rng);
        let drops = |c: &Cluster| c.is_polluted();

        let attempts = 3000;
        let plain = routing::delivery_rate(&overlay, attempts, &drops, &mut rng);
        let mut redundant_ok = 0usize;
        let labels = overlay.labels();
        for i in 0..attempts {
            let from = &labels[rng.random_range(0..labels.len())];
            let target = NodeId::from_data(&(i as u64).to_be_bytes());
            if routing::route_redundant(&overlay, from, &target, &drops, 3, &mut rng)? {
                redundant_ok += 1;
            }
        }
        println!(
            "{:>4.0}%   {:>7.2}% ({:>2} of 64)    {:>7.2}%    {:>7.2}%",
            mu * 100.0,
            100.0 * p_polluted,
            polluted_clusters,
            100.0 * plain,
            100.0 * redundant_ok as f64 / attempts as f64,
        );
    }
    println!("\nLesson: because the protocol keeps the polluted fraction small,");
    println!("lookups stay near-perfect; redundancy recovers transit losses but");
    println!("cannot save keys owned by a polluted cluster.");
    Ok(())
}
