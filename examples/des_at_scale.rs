//! The whole overlay as a discrete-event simulation, at production scale.
//!
//! Runs `pollux::des_overlay` at 10⁵ and ~1.3·10⁶ nodes and prints the
//! measured sojourn/absorption statistics next to the Markov chain's
//! predictions — the cross-validation loop behind the `des_validate`
//! sweep scenarios — plus wall-clock throughput (events per second),
//! single-shard and sharded: per-shard and aggregate rates, so a
//! multi-core run finally yields a worker-pool scaling number (see
//! `BENCH_des.json` for the recorded trajectory).
//!
//! ```text
//! cargo run --release --example des_at_scale
//! ```
//!
//! The shard count defaults to the machine's available parallelism;
//! override it with `POLLUX_DES_SHARDS=N`.
//!
//! `POLLUX_DES_TRACE=path.jsonl` additionally exports the tail of the
//! DES event trace (the last 65 536 events per shard, merged in time
//! order) as JSON Lines — one `{"cluster":…,"kind":…,"time":…,"x":…,
//! "y":…}` record per line. The trace only populates in builds with the
//! `metrics` cargo feature; recording it never changes the report bytes
//! (the run is re-executed through the observed entry point and checked
//! against the plain one).

use std::time::Instant;

use pollux::des_overlay::{
    run_des_overlay, run_des_overlay_duel_observed, run_des_overlay_duel_with_stats,
    DesOverlayConfig,
};
use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;
use pollux_defense::NullDefense;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
    let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
    let e_ts = analysis.expected_safe_events()?;
    let e_tp = analysis.expected_polluted_events()?;
    let amp = analysis.absorption_split()?.polluted_merge;

    let shards = std::env::var("POLLUX_DES_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    println!("model: {params}");
    println!("markov: E(T_S) = {e_ts:.4}  E(T_P) = {e_tp:.4}  p(AmP) = {amp:.4}\n");

    for bits in [14u32, 17] {
        // A generous per-cluster budget: E(T) ≈ 13 events, and unused
        // budget costs nothing without regeneration, so 3 000 per cluster
        // keeps the censoring probability of the sojourn tail negligible.
        let config = DesOverlayConfig::new(bits, 1.0, 3_000 << bits);
        let start = Instant::now();
        let r = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &config, 2011);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "n = {} clusters ({} nodes at t=0, peak {}):",
            r.n_clusters, r.initial_nodes, r.peak_nodes
        );
        println!(
            "  des:    T_S = {}  T_P = {}  p(AmP) = {:.4}  censored = {}",
            r.safe_events, r.polluted_events, r.absorption.2, r.censored
        );
        println!(
            "  1 shard:   {} events in {:.2} s — {:.1}M events/s, end time {:.1}",
            r.events,
            secs,
            r.events as f64 / secs / 1e6,
            r.end_time
        );

        // The same run sharded: byte-identical report, scaled wall clock.
        let start = Instant::now();
        let (sharded, stats) = run_des_overlay_duel_with_stats(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &NullDefense::new(),
            &config.clone().with_shards(shards),
            2011,
        );
        let sharded_secs = start.elapsed().as_secs_f64();
        assert_eq!(r, sharded, "sharding must never change the bytes");
        let per_shard: Vec<String> = stats
            .shard_events_per_sec()
            .iter()
            .map(|rate| format!("{:.2}M", rate / 1e6))
            .collect();
        println!(
            "  {} shards:  {:.2} s aggregate — {:.1}M events/s ({:.2}x), per shard [{}] events/s\n",
            stats.shards(),
            sharded_secs,
            sharded.events as f64 / sharded_secs / 1e6,
            secs / sharded_secs,
            per_shard.join(", "),
        );

        // Optional trace export for the first (16k) rung only — the tail
        // of a 10⁶-node run is just as representative and much smaller.
        if bits == 14 {
            if let Ok(path) = std::env::var("POLLUX_DES_TRACE") {
                let (traced, _, obs) = run_des_overlay_duel_observed(
                    &params,
                    &InitialCondition::Delta,
                    &strategy,
                    &NullDefense::new(),
                    &config,
                    2011,
                    65_536,
                );
                assert_eq!(r, traced, "tracing must never change the bytes");
                if pollux_obs::METRICS_ENABLED {
                    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                    obs.write_trace_jsonl(&mut f)?;
                    println!("  trace: wrote {} records to {path}\n", obs.trace.len());
                } else {
                    eprintln!("  trace: {path} skipped — rebuild with --features metrics\n");
                }
            }
        }
    }
    Ok(())
}
