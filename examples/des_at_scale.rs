//! The whole overlay as a discrete-event simulation, at production scale.
//!
//! Runs `pollux::des_overlay` at 10⁵ and ~1.3·10⁶ nodes and prints the
//! measured sojourn/absorption statistics next to the Markov chain's
//! predictions — the cross-validation loop behind the `des_validate`
//! sweep scenarios, plus wall-clock throughput (events per second).
//!
//! ```text
//! cargo run --release --example des_at_scale
//! ```

use std::time::Instant;

use pollux::des_overlay::{run_des_overlay, DesOverlayConfig};
use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
    let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
    let e_ts = analysis.expected_safe_events()?;
    let e_tp = analysis.expected_polluted_events()?;
    let amp = analysis.absorption_split()?.polluted_merge;

    println!("model: {params}");
    println!("markov: E(T_S) = {e_ts:.4}  E(T_P) = {e_tp:.4}  p(AmP) = {amp:.4}\n");

    for bits in [14u32, 17] {
        // ≈ enough events for every cluster to absorb.
        let config = DesOverlayConfig::new(bits, 1.0, 60 << bits);
        let start = Instant::now();
        let r = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &config, 2011);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "n = {} clusters ({} nodes at t=0, peak {}):",
            r.n_clusters, r.initial_nodes, r.peak_nodes
        );
        println!(
            "  des:    T_S = {}  T_P = {}  p(AmP) = {:.4}  censored = {}",
            r.safe_events, r.polluted_events, r.absorption.2, r.censored
        );
        println!(
            "  {} events in {:.2} s — {:.1}M events/s, end time {:.1}\n",
            r.events,
            secs,
            r.events as f64 / secs / 1e6,
            r.end_time
        );
    }
    Ok(())
}
