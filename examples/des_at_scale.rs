//! The whole overlay as a discrete-event simulation, at production scale.
//!
//! Runs `pollux::des_overlay` at 10⁵ and ~1.3·10⁶ nodes and prints the
//! measured sojourn/absorption statistics next to the Markov chain's
//! predictions — the cross-validation loop behind the `des_validate`
//! sweep scenarios — plus wall-clock throughput (events per second),
//! single-shard and sharded: per-shard and aggregate rates, so a
//! multi-core run finally yields a worker-pool scaling number, and a
//! per-rung memory block (the analytic byte audit next to peak RSS).
//! The ladder workload itself lives in `pollux_bench::des_ladder`,
//! shared with the `des_overlay` bench, so this example and
//! `BENCH_des.json` always measure the same thing.
//!
//! ```text
//! cargo run --release --example des_at_scale [-- --queue {heap,calendar}]
//! ```
//!
//! `--queue` selects the future-event-list backend (default `heap`, the
//! 4-ary min-heap; `calendar` is the O(1)-amortized calendar queue).
//! The reports are byte-identical either way — this flag only moves the
//! throughput numbers.
//!
//! The shard count defaults to the machine's available parallelism;
//! override it with `POLLUX_DES_SHARDS=N`.
//!
//! `POLLUX_DES_TRACE=path.jsonl` additionally exports the tail of the
//! DES event trace (the last 65 536 events per shard, merged in time
//! order) as JSON Lines — one `{"cluster":…,"kind":…,"time":…,"x":…,
//! "y":…}` record per line. The trace only populates in builds with the
//! `metrics` cargo feature; recording it never changes the report bytes
//! (the run is re-executed through the observed entry point and checked
//! against the plain one).

use std::time::Instant;

use pollux::des_overlay::{run_des_overlay_duel_observed, QueueBackend};
use pollux::{ClusterAnalysis, InitialCondition};
use pollux_adversary::TargetedStrategy;
use pollux_bench::des_ladder::{
    format_memory_line, ladder_config, ladder_params, rung_memory, time_sharded, time_single,
    LADDER_SEED,
};
use pollux_defense::NullDefense;

fn parse_queue_flag() -> Result<QueueBackend, String> {
    let mut args = std::env::args().skip(1);
    let mut queue = QueueBackend::Heap;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--queue" => {
                let v = args.next().ok_or("--queue needs a value")?;
                queue = match v.as_str() {
                    "heap" => QueueBackend::Heap,
                    "calendar" => QueueBackend::Calendar,
                    other => return Err(format!("unknown queue backend '{other}'")),
                };
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(queue)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queue = match parse_queue_flag() {
        Ok(q) => q,
        Err(msg) => {
            eprintln!("des_at_scale: {msg}\nusage: des_at_scale [--queue {{heap,calendar}}]");
            std::process::exit(2);
        }
    };
    let params = ladder_params();
    let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
    let e_ts = analysis.expected_safe_events()?;
    let e_tp = analysis.expected_polluted_events()?;
    let amp = analysis.absorption_split()?.polluted_merge;

    let shards = std::env::var("POLLUX_DES_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    println!("model: {params}");
    println!("queue: {queue:?}");
    println!("markov: E(T_S) = {e_ts:.4}  E(T_P) = {e_tp:.4}  p(AmP) = {amp:.4}\n");

    for bits in [14u32, 17] {
        // The shared ladder workload: a generous per-cluster budget
        // (E(T) ≈ 13 events, and unused budget costs nothing without
        // regeneration) keeps the censoring probability of the sojourn
        // tail negligible.
        let config = ladder_config(bits, queue);
        let (r, secs) = time_single(&params, &strategy, &config, 1);
        println!(
            "n = {} clusters ({} nodes at t=0, peak {}):",
            r.n_clusters, r.initial_nodes, r.peak_nodes
        );
        println!(
            "  des:    T_S = {}  T_P = {}  p(AmP) = {:.4}  censored = {}",
            r.safe_events, r.polluted_events, r.absorption.2, r.censored
        );
        println!(
            "  1 shard:   {} events in {:.2} s — {:.1}M events/s, end time {:.1}",
            r.events,
            secs,
            r.events as f64 / secs / 1e6,
            r.end_time
        );

        // The same run sharded with deterministic work-stealing on:
        // byte-identical report, scaled wall clock.
        let sharded_config = config.clone().with_shards(shards).with_work_stealing(1);
        let (sharded, stats, sharded_secs) = time_sharded(&params, &strategy, &sharded_config, 1);
        assert_eq!(r, sharded, "sharding must never change the bytes");
        let per_shard: Vec<String> = stats
            .shard_events_per_sec()
            .iter()
            .map(|rate| format!("{:.2}M", rate / 1e6))
            .collect();
        println!(
            "  {} shards:  {:.2} s aggregate — {:.1}M events/s ({:.2}x), per shard [{}] events/s",
            stats.shards(),
            sharded_secs,
            sharded.events as f64 / sharded_secs / 1e6,
            secs / sharded_secs,
            per_shard.join(", "),
        );
        let (audit, peak) = rung_memory(&params, &config);
        assert!(
            audit.bytes_per_node() < 25.0,
            "memory audit over the 25.0 B/node ceiling"
        );
        println!("  {}\n", format_memory_line(&audit, peak));

        // Optional trace export for the first (16k) rung only — the tail
        // of a 10⁶-node run is just as representative and much smaller.
        if bits == 14 {
            if let Ok(path) = std::env::var("POLLUX_DES_TRACE") {
                let start = Instant::now();
                let (traced, _, obs) = run_des_overlay_duel_observed(
                    &params,
                    &InitialCondition::Delta,
                    &strategy,
                    &NullDefense::new(),
                    &config,
                    LADDER_SEED,
                    65_536,
                );
                let traced_secs = start.elapsed().as_secs_f64();
                assert_eq!(r, traced, "tracing must never change the bytes");
                if pollux_obs::METRICS_ENABLED {
                    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                    obs.write_trace_jsonl(&mut f)?;
                    println!(
                        "  trace: wrote {} records to {path} ({traced_secs:.2} s)\n",
                        obs.trace.len()
                    );
                } else {
                    eprintln!("  trace: {path} skipped — rebuild with --features metrics\n");
                }
            }
        }
    }
    Ok(())
}
