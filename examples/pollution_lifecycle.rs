//! Life of a targeted cluster: simulates single-cluster trajectories under
//! the paper's adversary, prints a textual timeline of one interesting
//! run, and compares the empirical distribution of the pollution time
//! `T_P` with the analytical one.
//!
//! ```text
//! cargo run --release --example pollution_lifecycle
//! ```

use pollux::simulation::{AbsorbedIn, ClusterSimulator};
use pollux::{ClusterAnalysis, ClusterState, InitialCondition, ModelParams, StateClass};
use pollux_adversary::TargetedStrategy;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults().with_mu(0.30).with_d(0.90);
    let strategy = TargetedStrategy::new(1, params.nu()).expect("validated parameters");
    let sim = ClusterSimulator::new(&params, &strategy);
    let start = ClusterState::new(3, 0, 0);

    // --- find and print one run that actually gets polluted --------------
    let mut rng = StdRng::seed_from_u64(7);
    'outer: for attempt in 0..10_000u64 {
        let mut state = start;
        let mut timeline = vec![state];
        while state.classify(&params).is_transient() {
            state = sim.step(state, &mut rng);
            timeline.push(state);
            if timeline.len() > 400 {
                continue 'outer;
            }
        }
        if timeline
            .iter()
            .any(|st| st.classify(&params) == StateClass::TransientPolluted)
        {
            println!("attempt {attempt}: a cluster that fell to the adversary\n");
            println!("{:>5}  {:>12}  phase", "event", "(s, x, y)");
            for (i, st) in timeline.iter().enumerate() {
                let phase = match st.classify(&params) {
                    StateClass::TransientSafe => "safe",
                    StateClass::TransientPolluted => "POLLUTED",
                    StateClass::SafeMerge => "absorbed: safe merge",
                    StateClass::SafeSplit => "absorbed: safe split",
                    StateClass::PollutedMerge => "absorbed: POLLUTED MERGE",
                    StateClass::PollutedSplit => "absorbed: polluted split",
                };
                println!("{:>5}  ({}, {}, {})  {}", i, st.s, st.x, st.y, phase);
            }
            break;
        }
    }

    // --- distribution of T_P: simulation vs analysis ---------------------
    let reps = 60_000usize;
    let mut counts = [0usize; 10];
    let mut polluted_merges = 0usize;
    for _ in 0..reps {
        let out = sim.run(start, &mut rng);
        let bucket = (out.polluted_events as usize).min(counts.len() - 1);
        counts[bucket] += 1;
        if out.absorbed == AbsorbedIn::PollutedMerge {
            polluted_merges += 1;
        }
    }
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
    let dist = analysis.polluted_time_distribution(counts.len() - 1);

    println!("\ndistribution of the total pollution time T_P:");
    println!("{:>6}  {:>12}  {:>12}", "T_P", "analytical", "simulated");
    for (j, &c) in counts.iter().enumerate() {
        let tail = j == counts.len() - 1;
        let analytic = if tail {
            1.0 - dist[..j].iter().sum::<f64>()
        } else {
            dist[j]
        };
        println!(
            "{:>5}{}  {:>12.5}  {:>12.5}",
            j,
            if tail { "+" } else { " " },
            analytic,
            c as f64 / reps as f64
        );
    }
    println!(
        "\npolluted merges: {:.2}% of runs (analysis: {:.2}%)",
        100.0 * polluted_merges as f64 / reps as f64,
        100.0 * analysis.absorption_split()?.polluted_merge
    );
    Ok(())
}
