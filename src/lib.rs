//! Facade for the Pollux workspace: re-exports every crate so examples and
//! integration tests can use one import root.
pub use pollux;
pub use pollux_adversary as adversary;
pub use pollux_defense as defense;
pub use pollux_des as des;
pub use pollux_fuzz as fuzz;
pub use pollux_linalg as linalg;
pub use pollux_markov as markov;
pub use pollux_meanfield as meanfield;
pub use pollux_overlay as overlay;
pub use pollux_prob as prob;
pub use pollux_resilience as resilience;
pub use pollux_sweep as sweep;
